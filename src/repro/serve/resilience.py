"""Resilience primitives for the serving runtime.

Everything the fault-tolerant serving stack shares lives here:

* :class:`Deadline` — absolute wall-clock request deadlines, propagated
  from the HTTP edge through the batching queue into pool workers so a
  request never outlives its client timeout;
* :class:`CircuitBreaker` — per-dependency failure gate (registry load,
  feature-cache disk, array STA kernel) with closed → open → half-open
  transitions and counters;
* :class:`AdmissionController` — bounded admission with per-route
  concurrency limits; rejections carry a ``Retry-After`` hint and surface
  as HTTP 429 load shedding, never as queue growth;
* the **degradation ladder** — named, counted fallbacks that trade latency
  for availability without ever changing results: the array STA kernel
  degrades to the bit-identical ``reference`` kernel, a corrupt disk cache
  entry degrades to in-memory recompute, a failing micro-batch degrades to
  serial per-request predicts.

Every degradation is logged (``repro.serve`` logger) and counted
(``serve_degraded_*`` counters), so a chaos campaign can assert that each
ladder step actually fired — and that the answers stayed bit-identical.
"""

from __future__ import annotations

import logging
import os
import threading
import time
from dataclasses import dataclass
from typing import Callable, Dict, Optional, TypeVar

from repro.runtime import report as report_mod

T = TypeVar("T")

log = logging.getLogger("repro.serve")

#: Admission queue bound (pending + in-flight requests) before load shedding.
QUEUE_MAX_ENV_VAR = "REPRO_SERVE_QUEUE_MAX"

#: Default per-request deadline (seconds) when the client sends none.
DEADLINE_ENV_VAR = "REPRO_SERVE_DEADLINE_S"

#: ``Retry-After`` hint (seconds) attached to shed requests.
RETRY_AFTER_ENV_VAR = "REPRO_SERVE_RETRY_AFTER_S"

#: Maximum concurrent what-if sweeps (they are much heavier than predicts).
WHATIF_CONCURRENCY_ENV_VAR = "REPRO_SERVE_WHATIF_CONCURRENCY"

#: Consecutive failures before a circuit breaker opens.
BREAKER_THRESHOLD_ENV_VAR = "REPRO_SERVE_BREAKER_THRESHOLD"

#: Seconds an open breaker waits before letting one half-open probe through.
BREAKER_RESET_ENV_VAR = "REPRO_SERVE_BREAKER_RESET_S"


def _env_int(name: str, default: int) -> int:
    try:
        return int(os.environ.get(name, "") or default)
    except ValueError:
        return default


def _env_float(name: str, default: float) -> float:
    try:
        return float(os.environ.get(name, "") or default)
    except ValueError:
        return default


# ---------------------------------------------------------------------------
# Errors
# ---------------------------------------------------------------------------


class RejectedError(RuntimeError):
    """The admission controller shed this request (HTTP 429)."""

    def __init__(self, message: str, retry_after_s: float = 1.0):
        super().__init__(message)
        self.retry_after_s = retry_after_s


class DeadlineExceeded(TimeoutError):
    """The request's deadline passed before a result was produced (HTTP 504)."""


class WorkerUnavailable(RuntimeError):
    """No pool worker could answer within the retry budget (HTTP 503)."""


# ---------------------------------------------------------------------------
# Deadlines
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Deadline:
    """An absolute wall-clock deadline, safe to ship across processes.

    Wall clock (``time.time``) rather than the monotonic clock because pool
    workers are separate processes: the deadline must mean the same instant
    on both sides of the pipe (one host, one clock).
    """

    expires_at: float

    @classmethod
    def after(cls, seconds: Optional[float]) -> Optional["Deadline"]:
        """A deadline ``seconds`` from now; None stays None (no deadline)."""
        if seconds is None:
            return None
        return cls(expires_at=time.time() + max(float(seconds), 0.0))

    def remaining(self) -> float:
        """Seconds left (<= 0 means expired)."""
        return self.expires_at - time.time()

    @property
    def expired(self) -> bool:
        return self.remaining() <= 0.0


def remaining_or_none(deadline: Optional[Deadline]) -> Optional[float]:
    """Wait-timeout for ``deadline``: its remaining seconds, or None."""
    if deadline is None:
        return None
    return max(deadline.remaining(), 0.0)


# ---------------------------------------------------------------------------
# Circuit breaker
# ---------------------------------------------------------------------------


class CircuitBreaker:
    """Per-dependency failure gate with closed / open / half-open states.

    * **closed** — calls flow; consecutive failures are counted.
    * **open** — after ``failure_threshold`` consecutive failures the
      breaker trips: :meth:`allows` answers False until ``reset_after_s``
      elapsed, so a dead dependency is not hammered on every request.
    * **half-open** — after the reset window one probe is allowed through;
      success closes the breaker, failure re-opens it (with a fresh window).

    Thread-safe; also duck-type compatible with
    :attr:`repro.runtime.cache.ArtifactCache.breaker` (``allows`` /
    ``record_failure`` / ``record_success``), which is how the disk-cache
    dependency gets its gate without :mod:`repro.runtime` importing this
    module.
    """

    def __init__(
        self,
        name: str,
        failure_threshold: Optional[int] = None,
        reset_after_s: Optional[float] = None,
        report: Optional[report_mod.RuntimeReport] = None,
    ):
        self.name = name
        self.failure_threshold = max(
            failure_threshold
            if failure_threshold is not None
            else _env_int(BREAKER_THRESHOLD_ENV_VAR, 3),
            1,
        )
        self.reset_after_s = (
            reset_after_s
            if reset_after_s is not None
            else _env_float(BREAKER_RESET_ENV_VAR, 5.0)
        )
        self.report = report
        self._lock = threading.Lock()
        self._consecutive_failures = 0
        self._opened_at: Optional[float] = None
        self._probing = False
        self.trips = 0
        self.failures = 0

    @property
    def state(self) -> str:
        with self._lock:
            return self._state_locked()

    def _state_locked(self) -> str:
        if self._opened_at is None:
            return "closed"
        if time.monotonic() - self._opened_at >= self.reset_after_s:
            return "half_open"
        return "open"

    def allows(self) -> bool:
        """Whether a call may proceed (consumes the half-open probe slot)."""
        with self._lock:
            state = self._state_locked()
            if state == "closed":
                return True
            if state == "half_open" and not self._probing:
                self._probing = True
                return True
            return False

    def record_failure(self) -> None:
        with self._lock:
            self.failures += 1
            self._consecutive_failures += 1
            self._probing = False
            tripped = (
                self._opened_at is None
                and self._consecutive_failures >= self.failure_threshold
            )
            if tripped or self._opened_at is not None:
                # Trip, or re-open after a failed half-open probe.
                if self._opened_at is None:
                    self.trips += 1
                    self._incr(f"breaker_{self.name}_trips")
                self._opened_at = time.monotonic()
        self._incr(f"breaker_{self.name}_failures")
        if self.state != "closed":
            log.warning("circuit breaker %r is %s", self.name, self.state)

    def record_success(self) -> None:
        with self._lock:
            reopened = self._opened_at is not None
            self._consecutive_failures = 0
            self._opened_at = None
            self._probing = False
        if reopened:
            self._incr(f"breaker_{self.name}_recoveries")
            log.info("circuit breaker %r closed again", self.name)

    def _incr(self, counter: str) -> None:
        if self.report is not None:
            self.report.incr(counter)
        else:
            report_mod.incr(counter)


# ---------------------------------------------------------------------------
# Admission control
# ---------------------------------------------------------------------------


class AdmissionController:
    """Bounded admission with per-route concurrency limits.

    One global bound (``queue_max``) covers everything in flight or queued;
    per-route limits keep a heavy route (``whatif``) from starving a cheap
    one (``predict``).  Rejections raise :class:`RejectedError` immediately
    — the queue never grows past its bound, which is what keeps latency
    bounded under overload (shed early, answer fast).
    """

    def __init__(
        self,
        queue_max: Optional[int] = None,
        route_limits: Optional[Dict[str, int]] = None,
        retry_after_s: Optional[float] = None,
        report: Optional[report_mod.RuntimeReport] = None,
    ):
        self.queue_max = max(
            queue_max if queue_max is not None else _env_int(QUEUE_MAX_ENV_VAR, 128), 1
        )
        self.route_limits = dict(route_limits or {})
        self.retry_after_s = (
            retry_after_s
            if retry_after_s is not None
            else _env_float(RETRY_AFTER_ENV_VAR, 1.0)
        )
        self.report = report
        self._lock = threading.Lock()
        self._total = 0
        self._per_route: Dict[str, int] = {}

    def depth(self) -> int:
        with self._lock:
            return self._total

    def route_depth(self, route: str) -> int:
        with self._lock:
            return self._per_route.get(route, 0)

    def admit(self, route: str) -> "_Admission":
        """Admit one request on ``route`` or raise :class:`RejectedError`."""
        with self._lock:
            limit = self.route_limits.get(route)
            if self._total >= self.queue_max:
                reason = f"queue full ({self._total}/{self.queue_max})"
            elif limit is not None and self._per_route.get(route, 0) >= limit:
                reason = f"route {route!r} at concurrency limit ({limit})"
            else:
                self._total += 1
                self._per_route[route] = self._per_route.get(route, 0) + 1
                self._incr("serve_admitted")
                return _Admission(self, route)
        self._incr("serve_shed")
        self._incr(f"serve_shed_{route}")
        raise RejectedError(
            f"request shed: {reason}; retry after {self.retry_after_s:g}s",
            retry_after_s=self.retry_after_s,
        )

    def _release(self, route: str) -> None:
        with self._lock:
            self._total = max(self._total - 1, 0)
            self._per_route[route] = max(self._per_route.get(route, 0) - 1, 0)

    def _incr(self, counter: str) -> None:
        if self.report is not None:
            self.report.incr(counter)
        else:
            report_mod.incr(counter)


class _Admission:
    """Context manager releasing one admitted slot."""

    def __init__(self, controller: AdmissionController, route: str):
        self._controller = controller
        self._route = route

    def __enter__(self) -> "_Admission":
        return self

    def __exit__(self, *exc_info) -> None:
        self._controller._release(self._route)


# ---------------------------------------------------------------------------
# Degradation ladder
# ---------------------------------------------------------------------------

#: Ladder steps, most-preferred path first.  Every step preserves results
#: bit-for-bit; only latency degrades.
DEGRADATION_LADDER: Dict[str, str] = {
    "kernel_reference": "array STA kernel -> per-vertex reference kernel",
    "cache_recompute": "disk artifact/feature cache -> in-memory recompute",
    "serial_predict": "batched predict -> serial per-request predicts",
    "registry_payload": "registry bundle load -> cached in-memory payload",
}


def degrade(step: str, report: Optional[report_mod.RuntimeReport] = None) -> None:
    """Count + log one degradation-ladder step."""
    counter = f"serve_degraded_{step}"
    if report is not None:
        report.incr(counter)
    else:
        report_mod.incr(counter)
    log.warning("degraded: %s", DEGRADATION_LADDER.get(step, step))


def run_with_kernel_fallback(
    breaker: CircuitBreaker,
    fn: Callable[[], T],
    report: Optional[report_mod.RuntimeReport] = None,
) -> T:
    """Run ``fn`` preferring the array STA kernel, degrading to ``reference``.

    While the breaker is closed (or grants a half-open probe) the call runs
    under the ambient kernel selection; any exception counts against the
    breaker and the call is retried once under the forced ``reference``
    kernel.  While the breaker is open, calls go straight to the reference
    kernel — no per-request exception cost on a known-bad dependency.

    The two kernels are bit-identical by contract (fuzz-verified), so this
    fallback can never change a result — only its latency.  Errors that
    have nothing to do with the kernel (e.g. a Verilog parse error) fail
    again identically on the degraded retry and surface unchanged; they may
    transiently trip the breaker, which costs reference-kernel latency,
    never correctness.
    """
    from repro.sta import engine

    if breaker.allows():
        try:
            result = fn()
        except Exception:
            breaker.record_failure()
        else:
            breaker.record_success()
            return result
    degrade("kernel_reference", report)
    with engine.kernel_forced("reference"):
        return fn()
