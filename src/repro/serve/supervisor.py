"""Supervised pre-forked worker pool for the serving runtime.

The ROADMAP's multi-worker front end: every worker is a separate process
that restores one registry bundle (``RTLTimer.from_state`` over verified
payload bytes) and answers predict requests over a duplex pipe.  A
supervisor thread watches a shared heartbeat queue and restarts workers
that

* **crash** — the process died (``os._exit``, OOM-kill, segfault);
* **hang** — the heartbeat keeps arriving (the heartbeat *thread* is
  alive) but its ``busy_since`` timestamp shows the request loop stuck in
  one request longer than ``hang_timeout_s``;
* **go silent** — no heartbeat at all for ``heartbeat_timeout_s``;
* **leak** — reported RSS crossed ``rss_limit_mb``.

Restarts use exponential backoff per slot.  In-flight requests on a dead
worker are retried on a sibling (bounded by ``retry_limit``, respecting the
request's propagated deadline); predicts are idempotent pure functions of
the record, so a retry can never change an answer — only save it.  When no
sibling is alive the request parks and is flushed to the first worker that
comes back, which is what makes "zero lost accepted requests" hold through
a restart storm.

:class:`~repro.serve.service.PooledTimingService` plugs the pool into the
:class:`~repro.serve.service.TimingService` front end: admission,
micro-batch queueing, deadlines and the degradation ladder stay in the
parent; batch execution fans out over the pool, falling back to the
parent's own timer (bit-identical, counted) if the pool is momentarily
empty.
"""

from __future__ import annotations

import itertools
import logging
import multiprocessing as mp
import os
import pickle
import threading
import time
from dataclasses import dataclass, replace
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.faults import fault_fires
from repro.runtime.report import RuntimeReport
from repro.serve.resilience import (
    Deadline,
    DeadlineExceeded,
    WorkerUnavailable,
    _env_float,
    _env_int,
    degrade,
    remaining_or_none,
)

log = logging.getLogger("repro.serve")

#: Number of pool workers (0 disables the pool: in-process serving).
WORKERS_ENV_VAR = "REPRO_SERVE_WORKERS"

#: Seconds between worker heartbeats.
HEARTBEAT_ENV_VAR = "REPRO_SERVE_HEARTBEAT_S"

#: Seconds without any heartbeat before a worker is declared dead.
HEARTBEAT_TIMEOUT_ENV_VAR = "REPRO_SERVE_HEARTBEAT_TIMEOUT_S"

#: Seconds a worker may stay inside one request before it counts as hung.
HANG_TIMEOUT_ENV_VAR = "REPRO_SERVE_HANG_TIMEOUT_S"

#: RSS watermark per worker in MiB (0 disables the leak check).
RSS_LIMIT_ENV_VAR = "REPRO_SERVE_RSS_MB"

#: Base of the exponential restart backoff, seconds.
BACKOFF_ENV_VAR = "REPRO_SERVE_BACKOFF_S"

#: Upper bound of the restart backoff, seconds.
BACKOFF_MAX_ENV_VAR = "REPRO_SERVE_BACKOFF_MAX_S"

#: How many times one request may be retried on a sibling worker.
RETRIES_ENV_VAR = "REPRO_SERVE_RETRIES"


@dataclass(frozen=True)
class PoolConfig:
    """Supervision knobs of one :class:`WorkerPool`."""

    workers: int = 2
    heartbeat_interval_s: float = 0.25
    heartbeat_timeout_s: float = 5.0
    hang_timeout_s: float = 10.0
    rss_limit_mb: float = 0.0
    backoff_base_s: float = 0.1
    backoff_max_s: float = 5.0
    retry_limit: int = 2

    @classmethod
    def from_env(cls, **overrides) -> "PoolConfig":
        config = cls(
            workers=_env_int(WORKERS_ENV_VAR, cls.workers),
            heartbeat_interval_s=_env_float(HEARTBEAT_ENV_VAR, cls.heartbeat_interval_s),
            heartbeat_timeout_s=_env_float(
                HEARTBEAT_TIMEOUT_ENV_VAR, cls.heartbeat_timeout_s
            ),
            hang_timeout_s=_env_float(HANG_TIMEOUT_ENV_VAR, cls.hang_timeout_s),
            rss_limit_mb=_env_float(RSS_LIMIT_ENV_VAR, cls.rss_limit_mb),
            backoff_base_s=_env_float(BACKOFF_ENV_VAR, cls.backoff_base_s),
            backoff_max_s=_env_float(BACKOFF_MAX_ENV_VAR, cls.backoff_max_s),
            retry_limit=_env_int(RETRIES_ENV_VAR, cls.retry_limit),
        )
        return replace(config, **overrides) if overrides else config


def _rss_mb() -> float:
    """Resident set size of this process in MiB (Linux; 0.0 if unknown)."""
    try:
        with open("/proc/self/statm") as handle:
            pages = int(handle.read().split()[1])
        return pages * os.sysconf("SC_PAGE_SIZE") / (1024 * 1024)
    except (OSError, ValueError, IndexError):
        try:
            import resource

            return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0
        except Exception:
            return 0.0


# ---------------------------------------------------------------------------
# Worker process
# ---------------------------------------------------------------------------


def _worker_main(slot: int, conn, payload: bytes, config: PoolConfig) -> None:
    """Entry point of one pool worker process.

    Heartbeats travel over the same per-worker duplex pipe as results —
    deliberately *not* over a shared ``mp.Queue``: a worker killed mid-put
    (SIGKILL, ``os._exit`` chaos) would leave the queue's cross-process
    write lock held forever, silencing every sibling's heartbeats at once.
    A broken pipe only ever takes down its own worker.
    """
    from repro.core.pipeline import RTLTimer
    from repro.runtime.cache import gc_paused

    with gc_paused():
        timer = RTLTimer.from_state(pickle.loads(payload))

    # busy[0] is the wall-clock start of the request currently being
    # served, or 0.0 when idle; the heartbeat thread snapshots it so the
    # supervisor can tell a hung request loop from a healthy idle worker.
    busy = [0.0]
    stop = threading.Event()
    send_lock = threading.Lock()

    def send(message) -> bool:
        try:
            with send_lock:
                conn.send(message)
            return True
        except (OSError, ValueError):
            return False

    def heartbeat() -> None:
        while not stop.is_set():
            if not send(("hb", 0, (time.time(), _rss_mb(), busy[0]))):
                return  # pipe torn down: the parent is gone
            stop.wait(config.heartbeat_interval_s)

    threading.Thread(target=heartbeat, name=f"worker-{slot}-heartbeat", daemon=True).start()

    try:
        while True:
            try:
                kind, request_id, data = conn.recv()
            except (EOFError, OSError):
                break
            if kind == "shutdown":
                break
            busy[0] = time.time()
            try:
                if kind == "ping":
                    send(("ok", request_id, None))
                    continue
                # Chaos hooks fire before any work, exactly like a crash
                # between accept and compute would in production.  Draws are
                # keyed by the pool-wide request id: unique per dispatch, so
                # a retried request redraws (a fresh worker's per-process
                # counter would replay the same first draw on every spawn,
                # turning one unlucky seed into a deterministic crash loop).
                token = str(request_id)
                if fault_fires("worker.crash", token):
                    os._exit(43)
                if fault_fires("worker.hang", token):
                    time.sleep(3600.0)
                if fault_fires("worker.slow_io", token):
                    time.sleep(0.05)
                if kind == "predict":
                    record, expires_at = data
                    if expires_at is not None and time.time() >= expires_at:
                        send(("deadline", request_id, None))
                        continue
                    prediction = timer.predict(record)
                    send(("ok", request_id, prediction))
                elif kind == "whatif":
                    record, candidates, k, expires_at = data
                    if expires_at is not None and time.time() >= expires_at:
                        send(("deadline", request_id, None))
                        continue
                    estimates = timer.what_if(record, candidates=candidates, k=k)
                    send(("ok", request_id, estimates))
                else:
                    send(("error", request_id, f"unknown request kind {kind!r}"))
            except SystemExit:
                raise
            except BaseException as exc:
                if not send(("error", request_id, f"{type(exc).__name__}: {exc}")):
                    break
            finally:
                busy[0] = 0.0
    finally:
        stop.set()


# ---------------------------------------------------------------------------
# Parent-side plumbing
# ---------------------------------------------------------------------------


class PoolRequestHandle:
    """Parent-side completion handle for one pool request."""

    def __init__(self, kind: str, data: Tuple, deadline: Optional[Deadline]):
        self.kind = kind
        self.data = data
        self.deadline = deadline
        self.attempts = 0
        self.done = threading.Event()
        self.result_value: Any = None
        self.error: Optional[BaseException] = None

    def _resolve(self, value: Any = None, error: Optional[BaseException] = None) -> None:
        if self.done.is_set():
            return
        self.result_value = value
        self.error = error
        self.done.set()

    def result(self) -> Any:
        """Block for the outcome (bounded by the request deadline)."""
        if not self.done.wait(remaining_or_none(self.deadline)):
            raise DeadlineExceeded("pool request deadline expired")
        if self.error is not None:
            raise self.error
        return self.result_value


class _Worker:
    """Parent-side state of one pool slot."""

    def __init__(self, slot: int):
        self.slot = slot
        self.process: Optional[mp.process.BaseProcess] = None
        self.conn = None
        self.send_lock = threading.Lock()
        self.alive = False
        self.last_heartbeat = 0.0
        self.busy_since = 0.0
        self.rss_mb = 0.0
        self.restarts = 0
        self.started_at = 0.0
        #: Payload generation this incarnation was spawned with; a worker
        #: whose generation trails the pool's is rolled onto the new bundle.
        self.generation = 0
        self.pending: Dict[int, PoolRequestHandle] = {}


class WorkerPool:
    """Supervised pool of model-serving worker processes."""

    def __init__(
        self,
        payload_provider: Callable[[], bytes],
        config: Optional[PoolConfig] = None,
        report: Optional[RuntimeReport] = None,
    ):
        self.config = config or PoolConfig.from_env()
        self.report = report if report is not None else RuntimeReport()
        self._payload_provider = payload_provider
        self._payload = payload_provider()  # fail fast on a broken registry
        self._ctx = (
            mp.get_context("fork")
            if "fork" in mp.get_all_start_methods()
            else mp.get_context()
        )
        self._lock = threading.RLock()
        self._closed = False
        self._request_ids = itertools.count(1)
        self._route_counter = itertools.count()
        self._parked: List[PoolRequestHandle] = []
        #: Bumped by :meth:`request_refresh`; workers on an older generation
        #: are rolled (one at a time) onto the current payload.
        self._generation = 0
        self._workers = [_Worker(slot) for slot in range(max(self.config.workers, 1))]
        for worker in self._workers:
            self._spawn(worker)
        self._supervisor = threading.Thread(
            target=self._supervise, name="pool-supervisor", daemon=True
        )
        self._supervisor.start()

    # -- lifecycle ---------------------------------------------------------------

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
            workers = list(self._workers)
        for worker in workers:
            with worker.send_lock:
                if worker.conn is not None:
                    try:
                        worker.conn.send(("shutdown", 0, None))
                    except (OSError, ValueError):
                        pass
        deadline = time.monotonic() + 5.0
        for worker in workers:
            process = worker.process
            if process is None:
                continue
            process.join(timeout=max(deadline - time.monotonic(), 0.1))
            if process.is_alive():
                process.terminate()
                process.join(timeout=1.0)
        self._supervisor.join(timeout=5.0)
        with self._lock:
            leftovers = [
                handle
                for worker in self._workers
                for handle in worker.pending.values()
            ] + self._parked
            for worker in self._workers:
                worker.pending.clear()
            self._parked.clear()
        for handle in leftovers:
            handle._resolve(error=WorkerUnavailable("worker pool closed"))

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- submission --------------------------------------------------------------

    def submit(
        self,
        kind: str,
        *data: Any,
        deadline: Optional[Deadline] = None,
        content_key: Optional[str] = None,
    ) -> PoolRequestHandle:
        """Dispatch one request to a worker; returns a completion handle.

        ``content_key`` pins equal keys to the same (alive) worker so
        repeated requests for one design hit that worker's warm caches;
        without it requests round-robin.
        """
        handle = PoolRequestHandle(kind, tuple(data), deadline)
        if not self._dispatch(handle, content_key=content_key):
            with self._lock:
                if self._closed:
                    handle._resolve(error=WorkerUnavailable("worker pool closed"))
                else:
                    # Nobody alive right now: park until a restart flushes us.
                    self._parked.append(handle)
                    self.report.incr("serve_pool_parked")
        return handle

    def _dispatch(
        self, handle: PoolRequestHandle, content_key: Optional[str] = None
    ) -> bool:
        with self._lock:
            if self._closed:
                return False
            alive = [worker for worker in self._workers if worker.alive]
            if not alive:
                return False
            if content_key is not None:
                worker = alive[hash(content_key) % len(alive)]
            else:
                worker = alive[next(self._route_counter) % len(alive)]
            request_id = next(self._request_ids)
            worker.pending[request_id] = handle
        handle.attempts += 1
        expires_at = handle.deadline.expires_at if handle.deadline is not None else None
        message = (handle.kind, request_id, handle.data + (expires_at,))
        try:
            with worker.send_lock:
                worker.conn.send(message)
        # A concurrently restarted slot can close the pipe between the alive
        # check and the send; a closed Connection surfaces as TypeError (its
        # handle is None) and a conn replaced mid-flight as AttributeError.
        except (OSError, ValueError, TypeError, AttributeError):
            with self._lock:
                worker.pending.pop(request_id, None)
            self._mark_dead(worker, reason="send failed")
            return self._dispatch(handle, content_key=content_key)
        return True

    # -- worker lifecycle --------------------------------------------------------

    def _spawn(self, worker: _Worker) -> None:
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        process = self._ctx.Process(
            target=_worker_main,
            args=(worker.slot, child_conn, self._payload, self.config),
            name=f"timing-worker-{worker.slot}",
            daemon=True,
        )
        process.start()
        child_conn.close()
        now = time.time()
        with self._lock:
            worker.process = process
            worker.conn = parent_conn
            worker.alive = True
            worker.last_heartbeat = now  # grace until the first real beat
            worker.busy_since = 0.0
            worker.rss_mb = 0.0
            worker.started_at = now
            worker.generation = self._generation
        threading.Thread(
            target=self._receive_loop,
            args=(worker, parent_conn, process),
            name=f"pool-recv-{worker.slot}",
            daemon=True,
        ).start()
        self.report.incr("serve_worker_spawns")
        self._flush_parked()

    def _receive_loop(self, worker: _Worker, conn, process) -> None:
        while True:
            try:
                status, request_id, value = conn.recv()
            except (EOFError, OSError):
                break
            if status == "hb":
                # Heartbeats ride the result pipe; a beat from a previous
                # incarnation of the slot cannot arrive here because each
                # incarnation has its own pipe.
                if worker.process is process:
                    beat_at, rss_mb, busy_since = value
                    worker.last_heartbeat = max(worker.last_heartbeat, beat_at)
                    worker.rss_mb = rss_mb
                    worker.busy_since = busy_since
                continue
            with self._lock:
                handle = worker.pending.pop(request_id, None)
            if handle is None:
                continue  # abandoned (deadline) or requeued already
            if status == "ok":
                handle._resolve(value=value)
            elif status == "deadline":
                handle._resolve(error=DeadlineExceeded("deadline expired in worker"))
            else:
                handle._resolve(error=RuntimeError(f"worker error: {value}"))
        # Only the incarnation that owns this pipe may declare the slot dead.
        if worker.process is process:
            self._mark_dead(worker, reason="pipe closed")

    def _mark_dead(self, worker: _Worker, reason: str) -> None:
        with self._lock:
            if not worker.alive:
                return
            worker.alive = False
            closing = self._closed
            orphans = list(worker.pending.values())
            worker.pending.clear()
        if closing:
            # Expected pipe EOF of a worker we just told to shut down — not
            # a death.  Anything still pending cannot complete anymore.
            for handle in orphans:
                handle._resolve(error=WorkerUnavailable("worker pool closed"))
            return
        log.warning("worker %d down (%s); %d in-flight", worker.slot, reason, len(orphans))
        self.report.incr("serve_worker_deaths")
        for handle in orphans:
            self._retry(handle)

    def _retry(self, handle: PoolRequestHandle) -> None:
        if handle.done.is_set():
            return
        if handle.deadline is not None and handle.deadline.expired:
            handle._resolve(error=DeadlineExceeded("deadline expired during retry"))
            return
        if handle.attempts > self.config.retry_limit:
            handle._resolve(
                error=WorkerUnavailable(
                    f"request failed on {handle.attempts} workers (retry budget spent)"
                )
            )
            return
        self.report.incr("serve_request_retries")
        if not self._dispatch(handle):
            with self._lock:
                if self._closed:
                    handle._resolve(error=WorkerUnavailable("worker pool closed"))
                    return
                self._parked.append(handle)
                self.report.incr("serve_pool_parked")

    # -- bundle refresh (promotion hot swap) --------------------------------------

    def request_refresh(self, payload_provider: Optional[Callable[[], bytes]] = None) -> int:
        """Roll every worker onto a freshly provided payload; returns the generation.

        The supervisor restarts stale-generation workers **one slot at a
        time** (each respawn completes before the next slot is touched), so
        siblings keep serving throughout and any request in flight on a
        rolling slot is retried on a sibling by the normal death machinery —
        a promotion swaps bundles with zero dropped in-flight requests.
        ``payload_provider`` replaces the pool's provider (e.g. after a
        promotion changed what ``name@promoted`` resolves to); omitting it
        re-reads the existing provider, which is the right thing when the
        provider itself re-resolves a registry reference.
        """
        with self._lock:
            if payload_provider is not None:
                self._payload_provider = payload_provider
            self._generation += 1
            generation = self._generation
        self.report.incr("serve_pool_refreshes")
        return generation

    def refresh_complete(self) -> bool:
        """Whether every worker is alive on the current payload generation."""
        with self._lock:
            return all(
                worker.alive and worker.generation == self._generation
                for worker in self._workers
            )

    def _flush_parked(self) -> None:
        with self._lock:
            parked, self._parked = self._parked, []
        for handle in parked:
            if handle.deadline is not None and handle.deadline.expired:
                handle._resolve(error=DeadlineExceeded("deadline expired while parked"))
            elif not self._dispatch(handle):
                with self._lock:
                    self._parked.append(handle)

    def _restart(self, worker: _Worker, reason: str) -> None:
        self._mark_dead(worker, reason=reason)
        process = worker.process
        if process is not None and process.is_alive():
            process.terminate()
            process.join(timeout=2.0)
            if process.is_alive():
                process.kill()
                process.join(timeout=1.0)
        with worker.send_lock:  # never close the pipe under a sender's feet
            try:
                worker.conn.close()
            except (OSError, AttributeError):
                pass
        # A slot that stayed up well past the heartbeat window earns its
        # backoff back: only rapid crash loops pay exponentially.
        if time.time() - worker.started_at > max(self.config.heartbeat_timeout_s, 5.0):
            worker.restarts = 0
        backoff = min(
            self.config.backoff_base_s * (2.0 ** worker.restarts),
            self.config.backoff_max_s,
        )
        worker.restarts += 1
        self.report.incr("serve_worker_restarts")
        log.warning("restarting worker %d in %.3fs (%s)", worker.slot, backoff, reason)
        time.sleep(backoff)
        if self._closed:
            return
        # Prefer a fresh registry read (picks up repaired bundles); degrade
        # to the cached in-memory payload when the registry itself is the
        # failing dependency.
        try:
            self._payload = self._payload_provider()
        except Exception:
            degrade("registry_payload", self.report)
            self.report.incr("serve_registry_fallbacks")
        self._spawn(worker)

    def _supervise(self) -> None:
        check_every = max(self.config.heartbeat_interval_s / 2.0, 0.01)
        while not self._closed:
            time.sleep(check_every)
            now = time.time()
            for worker in self._workers:
                if self._closed:
                    break
                process = worker.process
                if not worker.alive:
                    # The receiver saw the pipe close (crash, send failure):
                    # the supervisor owns the respawn.
                    self._restart(worker, reason="worker died")
                elif process is not None and not process.is_alive():
                    self._restart(worker, reason=f"exited with {process.exitcode}")
                elif now - worker.last_heartbeat > self.config.heartbeat_timeout_s:
                    self._restart(worker, reason="missed heartbeats")
                elif (
                    worker.busy_since > 0.0
                    and now - worker.busy_since > self.config.hang_timeout_s
                ):
                    self._restart(worker, reason="request hung")
                elif (
                    self.config.rss_limit_mb > 0.0
                    and worker.rss_mb > self.config.rss_limit_mb
                ):
                    self._restart(worker, reason=f"rss {worker.rss_mb:.0f}MiB over limit")
                elif worker.generation != self._generation:
                    # Promotion hot swap: roll this slot onto the current
                    # payload.  _restart respawns synchronously, so only one
                    # slot is ever down for a refresh at a time.
                    self.report.incr("serve_worker_refreshes")
                    self._restart(worker, reason="bundle refresh")

    # -- introspection -----------------------------------------------------------

    def alive_count(self) -> int:
        with self._lock:
            return sum(1 for worker in self._workers if worker.alive)

    def status(self) -> List[Dict[str, Any]]:
        with self._lock:
            return [
                {
                    "slot": worker.slot,
                    "alive": worker.alive,
                    "pid": worker.process.pid if worker.process else None,
                    "restarts": worker.restarts,
                    "rss_mb": round(worker.rss_mb, 1),
                    "pending": len(worker.pending),
                    "generation": worker.generation,
                }
                for worker in self._workers
            ]
