"""Model-artifact registry: versioned, content-addressed estimator bundles.

The training side of the repo got fast (cached records, histogram GBMs) but
until this module every prediction still paid for a full ``fit`` — nothing
persisted a fitted :class:`~repro.core.pipeline.RTLTimer`.  The registry is
the train-once/serve-many boundary:

* a **bundle** is ``{"manifest": <plain JSON-able dict>, "payload":
  <pickled state bytes>}``.  The payload is the structural
  :meth:`~repro.core.pipeline.RTLTimer.to_state` snapshot (numpy arrays +
  scalars, no live estimator objects), so reloading is robust against
  incidental class-layout changes and restored predictions are
  bit-identical to the fitted original;
* the **bundle id** is ``sha256(payload)`` — content-addressed, so saving
  the same fitted model twice is idempotent and any byte flip in a stored
  payload is detected at load time (``RegistryError``), never silently
  served;
* the **manifest** carries the schema tag, config snapshot, training-design
  list and user metadata, and is validated field-by-field before the
  payload is even unpickled;
* storage is an :class:`~repro.runtime.cache.ArtifactCache` under
  ``<cache dir>/models`` (``REPRO_MODEL_DIR`` overrides) plus an atomic
  ``registry.json`` index mapping model *names* to their version history,
  newest last;
* each name additionally carries a **promotion history**: the deployment
  pointer behind the ``name@promoted`` alias.  Promotions are appended by
  the eval-gated ``python -m repro retrain`` flow (or a manual
  ``repro promote``) together with the eval-report digest that justified
  them, and :meth:`ModelRegistry.rollback` pops back to the previous
  promoted bundle.  Serving a model as ``name@promoted`` therefore follows
  deployments, not registrations.

``RTLTimer.save(path)`` / ``RTLTimer.load(path)`` use the same bundle
format as a single self-contained file for ad-hoc hand-offs.
"""

from __future__ import annotations

import contextlib
import copy
import hashlib
import json
import os
import pickle
import tempfile
import time
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Tuple

try:  # POSIX-only; the registry degrades to lock-free updates elsewhere
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None  # type: ignore[assignment]

from repro.runtime import report as report_mod
from repro.runtime.cache import ArtifactCache, PICKLE_PROTOCOL, default_cache_dir, gc_paused

#: Version tag of the bundle schema (manifest + payload layout).
MODEL_BUNDLE_SCHEMA = "repro-model-bundle/1"

#: Version tag of the ``registry.json`` index schema.
REGISTRY_INDEX_SCHEMA = "repro-model-registry/1"

#: Environment variable overriding the registry directory.
MODEL_DIR_ENV_VAR = "REPRO_MODEL_DIR"

#: Reserved version text selecting the promoted bundle: ``name@promoted``.
PROMOTED_ALIAS = "promoted"

#: Manifest fields that must be present (and hash-consistent) at load time.
_REQUIRED_MANIFEST_FIELDS = ("schema", "bundle_id", "model", "created_at")


class RegistryError(RuntimeError):
    """A bundle is missing, corrupted, or fails schema/hash validation."""


def default_model_dir() -> Path:
    """Registry directory: ``REPRO_MODEL_DIR`` or ``<cache dir>/models``."""
    env = os.environ.get(MODEL_DIR_ENV_VAR)
    if env:
        return Path(env).expanduser()
    return default_cache_dir() / "models"


# ---------------------------------------------------------------------------
# Bundles
# ---------------------------------------------------------------------------


def state_payload(state: Dict[str, Any]) -> bytes:
    """Pickle a model state into the canonical payload bytes."""
    with gc_paused():
        return pickle.dumps(state, protocol=PICKLE_PROTOCOL)


def bundle_id_for(payload: bytes) -> str:
    """Content address of a bundle: sha256 over the payload bytes."""
    return hashlib.sha256(payload).hexdigest()


def build_manifest(
    timer: Any,
    payload: bytes,
    name: Optional[str] = None,
    metadata: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Assemble the JSON-able manifest for one fitted timer's payload."""
    import repro

    return {
        "schema": MODEL_BUNDLE_SCHEMA,
        "bundle_id": bundle_id_for(payload),
        "model": "RTLTimer",
        "name": name,
        "created_at": time.time(),
        "repro_version": repro.__version__,
        "config": repr(timer.config),
        "training_designs": list(getattr(timer, "training_designs_", [])),
        "payload_bytes": len(payload),
        "metadata": dict(metadata or {}),
    }


def _validate_manifest(manifest: Any, expected_id: Optional[str] = None) -> Dict[str, Any]:
    if not isinstance(manifest, dict):
        raise RegistryError("bundle manifest is not a mapping")
    for field in _REQUIRED_MANIFEST_FIELDS:
        if field not in manifest:
            raise RegistryError(f"bundle manifest is missing the {field!r} field")
    if manifest["schema"] != MODEL_BUNDLE_SCHEMA:
        raise RegistryError(
            f"unsupported bundle schema {manifest['schema']!r} "
            f"(expected {MODEL_BUNDLE_SCHEMA!r})"
        )
    if expected_id is not None and manifest["bundle_id"] != expected_id:
        raise RegistryError("bundle manifest does not match the requested bundle id")
    return manifest


def _open_bundle(bundle: Any, expected_id: Optional[str] = None):
    """Validate a raw bundle dict and return the restored timer + manifest."""
    from repro.core.pipeline import RTLTimer

    if not isinstance(bundle, dict) or "manifest" not in bundle or "payload" not in bundle:
        raise RegistryError("bundle does not have the manifest/payload layout")
    manifest = _validate_manifest(bundle["manifest"], expected_id)
    payload = bundle["payload"]
    if not isinstance(payload, bytes):
        raise RegistryError("bundle payload is not a byte string")
    if bundle_id_for(payload) != manifest["bundle_id"]:
        raise RegistryError(
            "bundle payload does not hash to its recorded bundle id (corrupted bundle)"
        )
    with gc_paused():
        state = pickle.loads(payload)
    timer = RTLTimer.from_state(state)
    return timer, manifest


def write_bundle_file(timer: Any, path: os.PathLike) -> str:
    """Write one fitted timer as a self-contained bundle file; returns its id."""
    payload = state_payload(timer.to_state())
    manifest = build_manifest(timer, payload, name=Path(path).stem)
    destination = Path(path)
    destination.parent.mkdir(parents=True, exist_ok=True)
    with gc_paused():
        blob = pickle.dumps(
            {"manifest": manifest, "payload": payload}, protocol=PICKLE_PROTOCOL
        )
    fd, tmp_name = tempfile.mkstemp(dir=destination.parent, prefix=".tmp-bundle-")
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(blob)
        os.replace(tmp_name, destination)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    return manifest["bundle_id"]


def read_bundle_file(path: os.PathLike):
    """Load a :func:`write_bundle_file` bundle; raises :class:`RegistryError`."""
    try:
        blob = Path(path).read_bytes()
    except OSError as exc:
        raise RegistryError(f"cannot read bundle file {path}: {exc}") from exc
    try:
        with gc_paused():
            bundle = pickle.loads(blob)
    except Exception as exc:
        raise RegistryError(f"bundle file {path} does not hold pickled bundle data") from exc
    timer, _ = _open_bundle(bundle)
    return timer


# ---------------------------------------------------------------------------
# The registry proper
# ---------------------------------------------------------------------------


class ModelRegistry:
    """Named + versioned store of model bundles over :class:`ArtifactCache`.

    Bundles live in the cache's two-level fan-out layout keyed by bundle id;
    ``registry.json`` maps each model *name* to its version history (newest
    last).  Saving is idempotent per content: re-registering an identical
    fitted model under the same name does not grow the history.
    """

    def __init__(self, directory: Optional[os.PathLike] = None):
        self.directory = Path(directory) if directory is not None else default_model_dir()
        # Model bundles are explicit artifacts, not a transparent cache:
        # always enabled regardless of REPRO_CACHE so a training run's
        # save_model cannot silently vanish.
        self.cache = ArtifactCache(self.directory, enabled=True, counter_prefix="model")
        self.index_path = self.directory / "registry.json"

    # -- index ------------------------------------------------------------------

    @contextlib.contextmanager
    def _index_lock(self) -> Iterator[None]:
        """Serialize read-modify-write cycles on ``registry.json``.

        Concurrent trainers sharing one registry directory (parallel CI
        jobs, several ``python -m repro train`` processes) must not lose
        each other's registrations: the per-write ``os.replace`` is atomic,
        but the update as a whole is not.  An ``flock`` on a sidecar lock
        file covers the full cycle on POSIX; elsewhere this degrades to the
        lock-free behaviour.
        """
        if fcntl is None:
            yield
            return
        self.directory.mkdir(parents=True, exist_ok=True)
        with open(self.directory / ".registry.lock", "w") as handle:
            fcntl.flock(handle, fcntl.LOCK_EX)
            try:
                yield
            finally:
                fcntl.flock(handle, fcntl.LOCK_UN)

    def _read_index(self) -> Dict[str, Any]:
        try:
            index = json.loads(self.index_path.read_text())
        except FileNotFoundError:
            return {"schema": REGISTRY_INDEX_SCHEMA, "models": {}, "promotions": {}}
        except (OSError, json.JSONDecodeError) as exc:
            raise RegistryError(f"registry index {self.index_path} is unreadable: {exc}") from exc
        if index.get("schema") != REGISTRY_INDEX_SCHEMA:
            raise RegistryError(f"unsupported registry index schema {index.get('schema')!r}")
        # Indexes written before the lifecycle existed have no promotions map.
        index.setdefault("promotions", {})
        return index

    def _write_index(self, index: Dict[str, Any]) -> None:
        self.directory.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(dir=self.directory, prefix=".tmp-index-")
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(index, handle, indent=2)
                handle.write("\n")
            os.replace(tmp_name, self.index_path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    # -- public API ----------------------------------------------------------------

    def save(
        self,
        timer: Any,
        name: str,
        metadata: Optional[Dict[str, Any]] = None,
    ) -> Dict[str, Any]:
        """Register one fitted timer under ``name``; returns its manifest.

        A model whose payload bytes are already registered under this name
        is not duplicated — its existing manifest is returned with any new
        ``metadata`` keys merged in and persisted (the bundle blob is
        re-stored if it went missing or corrupt on disk).
        """
        if not name or "/" in name or "@" in name or name.startswith("."):
            # '@' is the version separator of resolve(), so a name carrying
            # it could never be looked up again.
            raise ValueError(f"invalid model name {name!r}")
        payload = state_payload(timer.to_state())
        manifest = build_manifest(timer, payload, name=name, metadata=metadata)
        bundle_id = manifest["bundle_id"]

        with self._index_lock(), report_mod.stage("serve.save_model"):
            index = self._read_index()
            versions: List[Dict[str, Any]] = index["models"].setdefault(name, [])
            known = any(version["bundle_id"] == bundle_id for version in versions)
            if known:
                report_mod.incr("model_dedup_saves")
                try:
                    stored = self.manifest(bundle_id)
                except RegistryError:
                    # The index knows this content but the blob is gone or
                    # corrupt: repair the store with the payload in hand
                    # instead of failing the save forever.
                    stored = None
                if stored is not None:
                    if metadata:
                        # The payload dedups but this save still carries new
                        # metadata; merge it into the stored manifest (the
                        # bundle id hashes the payload only, so the blob can
                        # be rewritten in place without changing identity).
                        stored.setdefault("metadata", {}).update(metadata)
                        if not self.cache.put(
                            bundle_id, {"manifest": stored, "payload": payload}
                        ):
                            raise RegistryError(
                                f"could not update metadata of bundle {bundle_id} "
                                f"in {self.directory}"
                            )
                    return stored
            if not self.cache.put(bundle_id, {"manifest": manifest, "payload": payload}):
                raise RegistryError(f"could not store bundle {bundle_id} in {self.directory}")
            if not known:
                versions.append(
                    {
                        "bundle_id": bundle_id,
                        "version": len(versions) + 1,
                        "created_at": manifest["created_at"],
                    }
                )
                self._write_index(index)
        return manifest

    def resolve(self, ref: str) -> str:
        """Resolve a model reference to a bundle id.

        ``ref`` is a model name (latest version), ``name@<version>``
        (e.g. ``mymodel@1``), ``name@promoted`` (the deployment pointer
        maintained by :meth:`promote` / :meth:`rollback`), or a full
        bundle id (which must actually exist in the store).
        """
        index = self._read_index()
        return self._resolve_in(index, ref)

    def _resolve_in(self, index: Dict[str, Any], ref: str) -> str:
        """:meth:`resolve` against an already-read index snapshot."""
        name, _, version_text = ref.partition("@")
        versions = index["models"].get(name)
        if versions:
            if not version_text:
                return versions[-1]["bundle_id"]
            if version_text == PROMOTED_ALIAS:
                history = index["promotions"].get(name)
                if not history:
                    raise RegistryError(
                        f"model {name!r} has no promoted version; "
                        f"run `repro retrain` or `repro promote` first"
                    )
                return history[-1]["bundle_id"]
            try:
                number = int(version_text)
            except ValueError:
                raise RegistryError(f"bad version {version_text!r} in model ref {ref!r}") from None
            for version in versions:
                if version["version"] == number:
                    return version["bundle_id"]
            raise RegistryError(f"model {name!r} has no version {number}")
        if len(ref) == 64 and all(c in "0123456789abcdef" for c in ref):
            # Verify the bundle actually exists so the error names the
            # missing id here rather than surfacing later as a generic
            # "missing or unreadable" on an id the caller may have mistyped.
            if not self.cache.path_for(ref).exists():
                raise RegistryError(
                    f"bundle {ref} is not present in the registry store {self.directory}"
                )
            return ref
        raise RegistryError(f"unknown model {ref!r}; registered: {sorted(index['models'])}")

    def _bundle(self, ref: str):
        bundle_id = self.resolve(ref)
        bundle = self.cache.get(bundle_id)
        if bundle is None:
            raise RegistryError(
                f"bundle {bundle_id} for model {ref!r} is missing or unreadable "
                f"in {self.directory}"
            )
        return _open_bundle(bundle, expected_id=bundle_id)

    def load(self, ref: str):
        """Load the timer a reference points at (schema + hash verified)."""
        return self.load_with_manifest(ref)[0]

    def load_with_manifest(self, ref: str) -> Tuple[Any, Dict[str, Any]]:
        """Load a timer together with its manifest in one bundle read.

        Preferred over ``load()`` + ``manifest()`` when both are needed —
        each of those deserializes the full bundle (payload included).
        """
        with report_mod.stage("serve.load_model"):
            return self._bundle(ref)

    def payload(self, ref: str) -> Tuple[bytes, Dict[str, Any]]:
        """Verified payload bytes + manifest, without restoring the model.

        The worker pool ships these bytes to forked workers, which call
        ``RTLTimer.from_state(pickle.loads(payload))`` themselves — one
        registry read per (re)spawn, hash-checked here so a corrupt store
        can never reach a worker.
        """
        bundle_id = self.resolve(ref)
        bundle = self.cache.get(bundle_id)
        if bundle is None:
            raise RegistryError(
                f"bundle {bundle_id} for model {ref!r} is missing or unreadable "
                f"in {self.directory}"
            )
        if not isinstance(bundle, dict) or "manifest" not in bundle or "payload" not in bundle:
            raise RegistryError("bundle does not have the manifest/payload layout")
        manifest = _validate_manifest(bundle["manifest"], expected_id=bundle_id)
        payload = bundle["payload"]
        if not isinstance(payload, bytes) or bundle_id_for(payload) != manifest["bundle_id"]:
            raise RegistryError(
                "bundle payload does not hash to its recorded bundle id (corrupted bundle)"
            )
        return payload, manifest

    def manifest(self, ref: str) -> Dict[str, Any]:
        """The manifest of a bundle without restoring the model payload."""
        bundle_id = self.resolve(ref)
        bundle = self.cache.get(bundle_id)
        if bundle is None:
            raise RegistryError(f"bundle {bundle_id} is missing or unreadable")
        if not isinstance(bundle, dict) or "manifest" not in bundle:
            raise RegistryError("bundle does not have the manifest/payload layout")
        return _validate_manifest(bundle["manifest"], expected_id=bundle_id)

    def list_models(self) -> Dict[str, List[Dict[str, Any]]]:
        """Name -> version history (oldest first) of every registered model.

        The result is a deep copy: mutating it cannot corrupt what a later
        :meth:`resolve` in the same process reads (the index itself is only
        ever rewritten atomically under the registry lock).
        """
        return copy.deepcopy(self._read_index()["models"])

    # -- promotion (the name@promoted deployment pointer) -------------------------

    def promote(
        self,
        name: str,
        ref: str,
        eval_digest: Optional[str] = None,
        source: str = "manual",
    ) -> Dict[str, Any]:
        """Point ``name@promoted`` at ``ref``; returns the promotion entry.

        ``ref`` must resolve to a registered version of ``name`` whose blob
        is present in the store — the promoted alias may never point at a
        bundle that cannot be served.  ``eval_digest`` records the digest of
        the eval report that justified the promotion (``repro retrain``
        passes it; manual promotions default to ``None``).  Re-promoting
        the already-promoted bundle is idempotent and does not grow the
        history.
        """
        with self._index_lock():
            index = self._read_index()
            bundle_id = self._resolve_in(index, ref)
            versions = index["models"].get(name) or []
            version = next(
                (v["version"] for v in versions if v["bundle_id"] == bundle_id), None
            )
            if version is None:
                raise RegistryError(
                    f"bundle {bundle_id} is not a registered version of model {name!r}"
                )
            if not self.cache.path_for(bundle_id).exists():
                raise RegistryError(
                    f"cannot promote {name!r}: bundle {bundle_id} is missing from the store"
                )
            history: List[Dict[str, Any]] = index["promotions"].setdefault(name, [])
            if history and history[-1]["bundle_id"] == bundle_id:
                return copy.deepcopy(history[-1])
            entry = {
                "bundle_id": bundle_id,
                "version": version,
                "eval_digest": eval_digest,
                "promoted_at": time.time(),
                "source": source,
            }
            history.append(entry)
            self._write_index(index)
            report_mod.incr("model_promotions")
        return copy.deepcopy(entry)

    def promoted(self, name: str) -> Optional[Dict[str, Any]]:
        """The active promotion entry of ``name`` (deep copy), or ``None``."""
        history = self._read_index()["promotions"].get(name)
        return copy.deepcopy(history[-1]) if history else None

    def promotion_history(self, name: str) -> List[Dict[str, Any]]:
        """Every promotion of ``name``, oldest first (deep copy)."""
        return copy.deepcopy(self._read_index()["promotions"].get(name, []))

    def rollback(self, name: str) -> Dict[str, Any]:
        """Drop the newest promotion of ``name``; returns the restored entry.

        Recovery path for a bad promotion: the alias moves back to the
        previously promoted bundle.  Raises :class:`RegistryError` when the
        name has no promotion or nothing older to fall back to, or when the
        restored bundle's blob has gone missing (rolling back onto an
        unservable bundle would just move the outage).
        """
        with self._index_lock():
            index = self._read_index()
            history = index["promotions"].get(name)
            if not history:
                raise RegistryError(f"model {name!r} has no promotion to roll back")
            if len(history) < 2:
                raise RegistryError(
                    f"model {name!r} has no previous promotion to roll back to"
                )
            restored = history[-2]
            if not self.cache.path_for(restored["bundle_id"]).exists():
                raise RegistryError(
                    f"cannot roll back {name!r}: previous bundle "
                    f"{restored['bundle_id']} is missing from the store"
                )
            history.pop()
            self._write_index(index)
            report_mod.incr("model_rollbacks")
        return copy.deepcopy(restored)


# -- module-level convenience ---------------------------------------------------


def save_model(
    timer: Any,
    name: str,
    registry: Optional[ModelRegistry] = None,
    metadata: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Register a fitted timer in the (default) registry; returns the manifest."""
    return (registry or ModelRegistry()).save(timer, name, metadata=metadata)


def load_model(ref: str, registry: Optional[ModelRegistry] = None):
    """Load a registered model by name / ``name@version`` / bundle id."""
    return (registry or ModelRegistry()).load(ref)
