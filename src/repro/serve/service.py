"""Load-once, thread-safe serving facade over :class:`RTLTimer`.

A :class:`TimingService` owns one fitted timer and answers prediction
requests from many threads.  Requests that arrive close together are
**micro-batched**: the first request of a batch waits up to
``batch_window_s`` for companions, then the whole group runs through one
:meth:`RTLTimer.predict_batch` call — amortizing per-stage model dispatch
and sharing the warm path-feature cache — and every caller gets exactly the
prediction it would have gotten from a serial in-process ``predict``
(predict_batch is element-wise identical by construction, covered by
``tests/test_runtime_engine.py`` and re-asserted for the service in
``tests/test_serve.py``).

Every request is timed into the service's
:class:`~repro.runtime.report.RuntimeReport` (``serve.*`` stages,
``serve_requests`` / ``serve_batches`` counters); :meth:`TimingService.metrics`
derives latency percentiles and the realized mean batch size, which the
serve benchmark appends to ``BENCH_runtime.json``.
"""

from __future__ import annotations

import os
import threading
import time
from collections import OrderedDict, deque
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, Dict, List, Optional, Sequence

from repro.core.dataset import DesignRecord, build_design_record
from repro.core.pipeline import RTLTimer, RTLTimerPrediction
from repro.faults import fault_fires
from repro.runtime.cache import ArtifactCache, record_key
from repro.runtime.report import RuntimeReport, activate
from repro.serve.resilience import (
    DEADLINE_ENV_VAR,
    WHATIF_CONCURRENCY_ENV_VAR,
    AdmissionController,
    CircuitBreaker,
    Deadline,
    DeadlineExceeded,
    WorkerUnavailable,
    _env_int,
    degrade,
    remaining_or_none,
    run_with_kernel_fallback,
)
from repro.serve.supervisor import PoolConfig, WorkerPool

#: Stage names emitted by the service (kept as constants so the serve
#: benchmark and the docs cannot drift from the implementation).
PREDICT_BATCH_STAGE = "serve.predict_batch"
PREDICT_P50_STAGE = "serve.predict_p50"
WHATIF_STAGE = "serve.whatif"

#: Seconds between promotion polls of a serving process following a
#: ``name@promoted`` model reference (0 disables following).
REFRESH_ENV_VAR = "REPRO_SERVE_REFRESH_S"


@dataclass(frozen=True)
class ServeConfig:
    """Batching and record-cache knobs of one :class:`TimingService`."""

    #: Maximum number of requests fused into one ``predict_batch`` call.
    max_batch: int = 16
    #: How long the first request of a batch waits for companions (seconds).
    #: 0 disables micro-batching (every request runs alone, still async-safe).
    batch_window_s: float = 0.005
    #: Build-on-demand records for ``/predict`` source payloads go through
    #: the content-addressed artifact cache when enabled.
    cache_records: bool = True
    #: Default candidate count for ``what_if`` when none are supplied.
    whatif_k: int = 8
    #: Latency samples kept for the percentile metrics (newest win; bounds
    #: memory on long-lived services).
    latency_window: int = 4096
    #: In-process DesignRecords kept hot for repeated source payloads (LRU);
    #: evicted entries fall back to the on-disk artifact cache.
    record_cache_entries: int = 64
    #: Admission bound on queued + in-flight requests before load shedding
    #: (None: ``$REPRO_SERVE_QUEUE_MAX``, default 128).
    queue_max: Optional[int] = None
    #: Default per-request deadline in seconds (None: ``$REPRO_SERVE_DEADLINE_S``,
    #: default no deadline).
    deadline_s: Optional[float] = None
    #: ``Retry-After`` hint attached to shed requests (None:
    #: ``$REPRO_SERVE_RETRY_AFTER_S``, default 1s).
    retry_after_s: Optional[float] = None
    #: Concurrent what-if sweeps admitted (None:
    #: ``$REPRO_SERVE_WHATIF_CONCURRENCY``, default 4).
    whatif_concurrency: Optional[int] = None


@dataclass
class _Request:
    """One queued prediction request and its completion plumbing."""

    record: DesignRecord
    enqueued_at: float
    deadline: Optional[Deadline] = None
    done: threading.Event = field(default_factory=threading.Event)
    prediction: Optional[RTLTimerPrediction] = None
    error: Optional[BaseException] = None
    batch_size: int = 0
    queue_seconds: float = 0.0


class TimingService:
    """Thread-safe, micro-batching inference service over one fitted timer."""

    def __init__(
        self,
        timer: RTLTimer,
        config: Optional[ServeConfig] = None,
        report: Optional[RuntimeReport] = None,
        manifest: Optional[Dict[str, Any]] = None,
    ):
        self.timer = timer
        self.config = config or ServeConfig()
        self.report = report if report is not None else RuntimeReport()
        #: Manifest of the bundle this service was loaded from (None when the
        #: timer was fitted in-process); surfaced by ``/health``.
        self.manifest = manifest
        self.started_at = time.time()

        self._queue: List[_Request] = []
        self._mutex = threading.Lock()
        self._wakeup = threading.Condition(self._mutex)
        self._closed = False
        self._abort = False
        self._latencies: Deque[float] = deque(maxlen=max(self.config.latency_window, 1))
        self._whatif_mutex = threading.Lock()
        self._record_cache: "OrderedDict[str, DesignRecord]" = OrderedDict()
        self._record_mutex = threading.Lock()
        whatif_limit = (
            self.config.whatif_concurrency
            if self.config.whatif_concurrency is not None
            else _env_int(WHATIF_CONCURRENCY_ENV_VAR, 4)
        )
        self.admission = AdmissionController(
            queue_max=self.config.queue_max,
            route_limits={"whatif": max(whatif_limit, 1)},
            retry_after_s=self.config.retry_after_s,
            report=self.report,
        )
        #: Per-dependency circuit breakers feeding the degradation ladder.
        self.kernel_breaker = CircuitBreaker("kernel", report=self.report)
        self.cache_breaker = CircuitBreaker("cache_disk", report=self.report)
        self._artifacts = ArtifactCache() if self.config.cache_records else None
        if self._artifacts is not None:
            self._artifacts.breaker = self.cache_breaker
        self._worker = threading.Thread(
            target=self._serve_loop, name="timing-service-batcher", daemon=True
        )
        self._worker.start()

    # -- lifecycle ---------------------------------------------------------------

    def close(self, drain: bool = True, timeout: float = 30.0) -> None:
        """Stop the service deterministically.

        With ``drain`` (the default) requests already queued are completed
        before the batching worker exits; new requests are rejected from the
        moment close() is called.  With ``drain=False`` queued requests are
        rejected immediately with ``RuntimeError``.  Either way no client
        thread is left hanging: anything still unresolved when the worker is
        gone (including a worker that outlived ``timeout``) is failed
        explicitly.
        """
        with self._wakeup:
            already_closed = self._closed
            self._closed = True
            if not drain:
                self._abort = True
            self._wakeup.notify_all()
        self._worker.join(timeout=timeout)
        if already_closed:
            return
        # Deterministic sweep: fail whatever survived (abort path, or a
        # worker that did not finish draining within the timeout).
        with self._wakeup:
            pending, self._queue = self._queue, []
        for request in pending:
            if not request.done.is_set():
                request.error = RuntimeError("TimingService closed while request was queued")
                request.done.set()

    def __enter__(self) -> "TimingService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- hot swap ----------------------------------------------------------------

    @property
    def active_bundle_id(self) -> Optional[str]:
        """Bundle id currently serving predictions (None for in-process fits)."""
        manifest = self.manifest
        return manifest.get("bundle_id") if manifest else None

    @property
    def eval_digest(self) -> Optional[str]:
        """Digest of the eval report that promoted the active bundle, if any."""
        manifest = self.manifest
        return manifest.get("eval_digest") if manifest else None

    def reload(self, timer: RTLTimer, manifest: Optional[Dict[str, Any]] = None) -> None:
        """Swap the served model in place without dropping queued requests.

        The batching worker reads ``self.timer`` once per batch, so a plain
        attribute rebind is atomic under the GIL: every request resolves
        against exactly one bundle — the old one or the new one, never a
        mixture.  Requests already queued keep their answers; nothing is
        rejected or restarted.
        """
        self.timer = timer
        self.manifest = manifest
        self.report.incr("serve_model_reloads")

    # -- inference ---------------------------------------------------------------

    def _default_deadline_s(self) -> Optional[float]:
        if self.config.deadline_s is not None:
            return self.config.deadline_s
        raw = os.environ.get(DEADLINE_ENV_VAR)
        try:
            return float(raw) if raw else None
        except ValueError:
            return None

    def predict(
        self, record: DesignRecord, deadline_s: Optional[float] = None
    ) -> RTLTimerPrediction:
        """Predict one design; bit-identical to in-process ``timer.predict``.

        Thread-safe: concurrent callers are fused into one batched model
        pass when they arrive within the batching window.
        """
        prediction, _ = self.predict_with_stats(record, deadline_s=deadline_s)
        return prediction

    def predict_with_stats(self, record: DesignRecord, deadline_s: Optional[float] = None):
        """Like :meth:`predict`, plus per-request serving stats.

        Returns ``(prediction, stats)`` where ``stats`` reports the realized
        batch size, time spent queued and total service latency for *this*
        request — the per-request view of the service-wide report.

        The request is admission-controlled (:class:`RejectedError` when the
        service is saturated) and deadline-bounded
        (:class:`DeadlineExceeded` rather than an unbounded wait; the
        deadline propagates into pool workers).
        """
        deadline = Deadline.after(
            deadline_s if deadline_s is not None else self._default_deadline_s()
        )
        with self.admission.admit("predict"):
            request = _Request(
                record=record, enqueued_at=time.perf_counter(), deadline=deadline
            )
            with self._wakeup:
                if self._closed:
                    raise RuntimeError("TimingService is closed")
                self._queue.append(request)
                self._wakeup.notify_all()
            if not request.done.wait(remaining_or_none(deadline)):
                # The batch worker will still resolve the request object
                # eventually; nobody is listening by then.
                self.report.incr("serve_deadline_timeouts")
                raise DeadlineExceeded("predict deadline expired")
            if request.error is not None:
                raise request.error
            latency = time.perf_counter() - request.enqueued_at
            with self._mutex:
                self._latencies.append(latency)
            stats = {
                "batch_size": request.batch_size,
                "queue_seconds": round(request.queue_seconds, 6),
                "latency_seconds": round(latency, 6),
            }
            return request.prediction, stats

    def what_if(
        self,
        record: DesignRecord,
        candidates: Optional[Sequence[Any]] = None,
        k: Optional[int] = None,
    ):
        """Project candidate synthesis option sets with the incremental engine.

        The prediction feeding candidate generation goes through the batched
        :meth:`predict` path; the incremental what-if sweep itself mutates
        patch state on the record's baseline netlist, so sweeps are
        serialized per service.
        """
        with self.admission.admit("whatif"):
            prediction = None
            if candidates is None:
                prediction = self.predict(record)
            with self._whatif_mutex, activate(self.report), self.report.stage(WHATIF_STAGE):
                estimates = run_with_kernel_fallback(
                    self.kernel_breaker,
                    lambda: self.timer.what_if(
                        record,
                        candidates=candidates,
                        prediction=prediction,
                        k=self.config.whatif_k if k is None else k,
                    ),
                    self.report,
                )
            self.report.incr("serve_whatif_requests")
            return estimates

    def record_for_source(self, source: str, name: Optional[str] = None) -> DesignRecord:
        """Elaborate (or fetch) the DesignRecord for raw Verilog source.

        Records are cached twice: an in-process dict for the lifetime of the
        service and — when enabled — the shared content-addressed artifact
        cache, so repeated requests for the same source skip elaboration.
        """
        key = record_key(source, None, name)
        with self._record_mutex:
            cached = self._record_cache.get(key)
            if cached is not None:
                self._record_cache.move_to_end(key)
        if cached is not None:
            self.report.incr("serve_record_hits")
            return cached
        with activate(self.report), self.report.stage("serve.build_record"):
            # The build runs the STA kernel; the breaker degrades a failing
            # array kernel to the bit-identical reference loop.  A corrupt
            # disk-cache entry already degrades to recompute inside
            # ArtifactCache.get (gated by cache_breaker).
            if self._artifacts is not None:
                record = run_with_kernel_fallback(
                    self.kernel_breaker,
                    lambda: self._artifacts.load_or_build(
                        key, lambda: build_design_record(source, name=name)
                    ),
                    self.report,
                )
            else:
                record = run_with_kernel_fallback(
                    self.kernel_breaker,
                    lambda: build_design_record(source, name=name),
                    self.report,
                )
        with self._record_mutex:
            self._record_cache[key] = record
            self._record_cache.move_to_end(key)
            while len(self._record_cache) > max(self.config.record_cache_entries, 1):
                self._record_cache.popitem(last=False)
        return record

    # -- metrics -----------------------------------------------------------------

    def metrics(self) -> Dict[str, Any]:
        """Service-level snapshot: report + latency percentiles + batch size."""
        with self._mutex:
            latencies = sorted(self._latencies)
        snapshot = self.report.to_dict()
        requests = self.report.counters.get("serve_requests", 0)
        batches = self.report.counters.get("serve_batches", 0)
        serving: Dict[str, Any] = {
            "requests": requests,
            "batches": batches,
            "batch_size": round(requests / batches, 3) if batches else 0.0,
            "uptime_seconds": round(time.time() - self.started_at, 3),
            "active_bundle_id": self.active_bundle_id,
            "eval_digest": self.eval_digest,
            "admission_depth": self.admission.depth(),
            "breakers": {
                "kernel": self.kernel_breaker.state,
                "cache_disk": self.cache_breaker.state,
            },
        }
        if latencies:
            serving["predict_p50"] = round(_percentile(latencies, 0.50), 6)
            serving["predict_p95"] = round(_percentile(latencies, 0.95), 6)
            serving["predict_p99"] = round(_percentile(latencies, 0.99), 6)
        snapshot["serving"] = serving
        return snapshot

    def runtime_report(self) -> RuntimeReport:
        """A copy of the service report with derived ``serve.*`` stages added.

        ``serve.predict_p50`` is recorded as a stage (it is a wall-time
        quantity) so the CI benchmark-trend artifact tracks it next to the
        other stages; the mean batch size lands in the ``derived`` section
        via the ``serve_requests`` / ``serve_batches`` counters.
        """
        merged = RuntimeReport().merge(self.report)
        with self._mutex:
            latencies = sorted(self._latencies)
        if latencies:
            merged.stages[PREDICT_P50_STAGE] = round(_percentile(latencies, 0.50), 6)
            merged.stage_calls[PREDICT_P50_STAGE] = len(latencies)
        return merged

    # -- batching worker -----------------------------------------------------------

    def _take_batch(self) -> Optional[List[_Request]]:
        """Block until a batch is ready (or the service closes)."""
        config = self.config
        # Clamp like the other ServeConfig knobs: max_batch <= 0 would make
        # the slice below never take anything while the queue stays
        # non-empty — a busy-spinning worker and callers blocked forever.
        max_batch = max(config.max_batch, 1)
        with self._wakeup:
            while not self._queue and not self._closed:
                self._wakeup.wait()
            if not self._queue or self._abort:
                return None  # closed with an empty queue, or close(drain=False)
            deadline = time.perf_counter() + config.batch_window_s
            while (
                len(self._queue) < max_batch
                and not self._closed
                and (remaining := deadline - time.perf_counter()) > 0.0
            ):
                self._wakeup.wait(timeout=remaining)
            batch = self._queue[:max_batch]
            del self._queue[:max_batch]
            return batch

    def _execute_batch(self, batch: List[_Request]) -> None:
        """Fill ``prediction`` for every request in ``batch`` (one model pass)."""
        if fault_fires("serve.batch_fail") and len(batch) > 1:
            raise RuntimeError("injected fault: serve.batch_fail")
        predictions = self.timer.predict_batch(
            [request.record for request in batch], report=self.report
        )
        for request, prediction in zip(batch, predictions):
            request.prediction = prediction

    def _execute_serial(self, record: DesignRecord) -> RTLTimerPrediction:
        """One in-process predict, kernel-breaker protected (the ladder floor)."""
        return run_with_kernel_fallback(
            self.kernel_breaker, lambda: self.timer.predict(record), self.report
        )

    def _serve_loop(self) -> None:
        while True:
            batch = self._take_batch()
            if batch is None:
                break
            taken_at = time.perf_counter()
            ready: List[_Request] = []
            for request in batch:
                request.queue_seconds = taken_at - request.enqueued_at
                if request.deadline is not None and request.deadline.expired:
                    # Nobody is waiting anymore; don't spend a model pass.
                    request.error = DeadlineExceeded("deadline expired in queue")
                    continue
                ready.append(request)
            for request in ready:
                request.batch_size = len(ready)
            if ready:
                try:
                    with activate(self.report), self.report.stage(PREDICT_BATCH_STAGE):
                        self._execute_batch(ready)
                except BaseException:  # degrade: the batch failed as a unit
                    if len(ready) > 1:
                        degrade("serial_predict", self.report)
                    for request in ready:
                        try:
                            with activate(self.report), self.report.stage(
                                PREDICT_BATCH_STAGE
                            ):
                                request.prediction = self._execute_serial(request.record)
                        except BaseException as exc:
                            request.error = exc
            self.report.incr("serve_requests", len(batch))
            self.report.incr("serve_batches")
            if len(ready) > 1:
                self.report.incr("serve_batched_requests", len(ready))
            for request in batch:
                request.done.set()
        # Fail whatever was still queued when close(drain=False) ran.
        with self._wakeup:
            pending, self._queue = self._queue, []
        for request in pending:
            request.error = RuntimeError("TimingService closed while request was queued")
            request.done.set()


def _percentile(sorted_values: List[float], fraction: float) -> float:
    """Nearest-rank percentile of an already-sorted non-empty list."""
    index = min(len(sorted_values) - 1, max(0, int(round(fraction * (len(sorted_values) - 1)))))
    return sorted_values[index]


class PooledTimingService(TimingService):
    """A :class:`TimingService` whose predicts run on a supervised worker pool.

    The parent keeps everything the single-process service has — admission,
    micro-batch queueing, deadlines, breakers, the degradation ladder — and
    fans each taken batch out over :class:`~repro.serve.supervisor.WorkerPool`
    workers (pinned by record name so repeated designs hit warm worker
    caches).  A worker crash/hang mid-request is retried on a sibling by the
    pool; if the whole pool is momentarily down the parent answers from its
    own timer — the same bundle state, so every path is bit-identical.

    ``payload_provider`` supplies verified bundle payload bytes for worker
    (re)loads — typically ``lambda: registry.payload(ref)[0]``; by default
    the parent timer's own state is pickled once and reused.
    """

    def __init__(
        self,
        timer: RTLTimer,
        config: Optional[ServeConfig] = None,
        report: Optional[RuntimeReport] = None,
        manifest: Optional[Dict[str, Any]] = None,
        pool_config: Optional[PoolConfig] = None,
        payload_provider: Optional[Callable[[], bytes]] = None,
    ):
        report = report if report is not None else RuntimeReport()
        if payload_provider is None:
            from repro.serve.registry import state_payload

            payload = state_payload(timer.to_state())
            payload_provider = lambda: payload  # noqa: E731 - closure over bytes
        # Pool first: a bad bundle must fail construction before the
        # batching thread starts accepting requests.
        self.pool = WorkerPool(
            payload_provider,
            config=pool_config or PoolConfig.from_env(),
            report=report,
        )
        try:
            super().__init__(timer, config=config, report=report, manifest=manifest)
        except BaseException:
            self.pool.close()
            raise

    def close(self, drain: bool = True, timeout: float = 30.0) -> None:
        super().close(drain=drain, timeout=timeout)
        self.pool.close()

    def _execute_batch(self, batch: List[_Request]) -> None:
        if fault_fires("serve.batch_fail") and len(batch) > 1:
            raise RuntimeError("injected fault: serve.batch_fail")
        handles = [
            (
                request,
                self.pool.submit(
                    "predict",
                    request.record,
                    deadline=request.deadline,
                    content_key=getattr(request.record, "name", None),
                ),
            )
            for request in batch
        ]
        for request, handle in handles:
            try:
                request.prediction = handle.result()
            except WorkerUnavailable:
                # Ladder floor: the parent's own timer, bit-identical.
                self.report.incr("serve_pool_local_fallbacks")
                try:
                    request.prediction = self._execute_serial(request.record)
                except BaseException as exc:
                    request.error = exc
            except BaseException as exc:
                request.error = exc

    def metrics(self) -> Dict[str, Any]:
        snapshot = super().metrics()
        snapshot["serving"]["workers"] = self.pool.status()
        return snapshot

    def reload(
        self,
        timer: RTLTimer,
        manifest: Optional[Dict[str, Any]] = None,
        payload: Optional[bytes] = None,
    ) -> None:
        """Hot-swap the bundle on the parent *and* roll it across the pool.

        The parent swap is the atomic rebind of :meth:`TimingService.reload`;
        the pool swap is a rolling generation bump — the supervisor restarts
        one stale worker at a time on the new payload while siblings keep
        serving, and any request in flight on a restarting worker is retried
        on a sibling by the pool's existing failover path.  No request is
        dropped at any point of the roll.
        """
        super().reload(timer, manifest=manifest)
        provider: Optional[Callable[[], bytes]] = None
        if payload is not None:
            provider = lambda: payload  # noqa: E731 - closure over bytes
        self.pool.request_refresh(provider)
