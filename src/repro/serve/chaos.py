"""Seed-replayable chaos campaigns against the fault-tolerant serving stack.

``python -m repro chaos`` is to the resilience subsystem what
``python -m repro fuzz`` is to the differential oracles: a campaign that
proves the claimed invariants against *injected* component failures rather
than trusting the happy path.  One campaign:

1. builds (or is handed) a small design set and a fitted timer, and
   computes the **healthy oracle** — the exact JSON every request must
   produce — before any fault is armed;
2. arms ``REPRO_FAULT_INJECT`` (worker crash/hang, cache corruption,
   kernel exceptions, batch failures — per-fault probability, one campaign
   seed) and only then builds a :class:`PooledTimingService` behind the
   real HTTP server, so forked workers inherit the faults;
3. drives concurrent HTTP traffic (registered-name predicts, raw-source
   predicts that exercise elaboration + disk cache + STA kernel, what-if
   sweeps) and checks every 200 against the oracle byte for byte;
4. runs a **directed ladder sweep** — each configured fault armed alone at
   probability 1 with traffic shaped to hit it — so "every degradation
   step exercised" holds on every seed, not just lucky ones;
5. clears the faults and measures **recovery**: how long until the service
   answers every design correctly again;
6. asserts the invariants — zero wrong answers, zero lost accepted
   requests (shed 429s are not accepted and not lost), availability over
   accepted traffic at or above the floor, recovery within the bound, and
   every fault-implied degradation-ladder step actually exercised — and
   publishes ``serve.chaos_*`` / ``serve.availability`` stages for the CI
   trend gate.

A violated campaign writes a replayable bundle (seed, faults, knobs,
violations) exactly like the fuzz runner's failing-seed bundles.
"""

from __future__ import annotations

import argparse
import contextlib
import http.client
import json
import os
import sys
import tempfile
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence

from repro.faults import FAULT_ENV_VAR, FAULT_REGISTRY, format_faults, reset_draws
from repro.runtime import report as report_mod
from repro.runtime.cache import CACHE_DIR_ENV_VAR
from repro.serve.http import prediction_to_json, start_server
from repro.serve.service import PooledTimingService, ServeConfig
from repro.serve.supervisor import PoolConfig

#: Schema tag of the replayable failure bundle.
CHAOS_BUNDLE_SCHEMA = "repro-chaos-bundle/1"

#: Stage names published into BENCH_runtime.json (CI gates trend on these).
CAMPAIGN_STAGE = "serve.chaos_campaign"
P50_STAGE = "serve.chaos_p50"
P95_STAGE = "serve.chaos_p95"
P99_STAGE = "serve.chaos_p99"
RECOVERY_STAGE = "serve.chaos_recovery"
AVAILABILITY_STAGE = "serve.availability"

#: Default fault mix of the CI chaos lane: every ladder step implied.
DEFAULT_FAULTS: Dict[str, float] = {
    "worker.crash": 0.08,
    "worker.hang": 0.03,
    "cache.corrupt_entry": 0.3,
    "kernel.exception": 0.3,
    "serve.batch_fail": 0.15,
}

#: Which observable evidence each fault must leave behind (any one counter
#: moving counts).  This is how "every degradation-ladder step exercised"
#: is asserted rather than assumed.
FAULT_EVIDENCE: Dict[str, Sequence[str]] = {
    "worker.crash": ("serve_worker_restarts",),
    "worker.hang": ("serve_worker_restarts",),
    "worker.slow_io": (),
    "cache.corrupt_entry": ("cache_corrupt", "serve_degraded_cache_recompute"),
    "kernel.exception": ("serve_degraded_kernel_reference",),
    "serve.batch_fail": ("serve_degraded_serial_predict",),
}


@dataclass(frozen=True)
class ChaosConfig:
    """One campaign's knobs (fully determined by these + the seed)."""

    seed: int = 0
    requests: int = 60
    concurrency: int = 6
    workers: int = 2
    designs: int = 3
    faults: Dict[str, float] = field(default_factory=dict)
    deadline_s: float = 30.0
    recovery_timeout_s: float = 20.0
    availability_floor: float = 0.99
    #: every Nth request posts raw Verilog source (elaboration + disk cache
    #: + STA kernel path); every Mth runs a what-if sweep.
    raw_source_every: int = 5
    whatif_every: int = 9
    hang_timeout_s: float = 1.0
    heartbeat_timeout_s: float = 3.0
    backoff_max_s: float = 0.5


@dataclass
class ChaosResult:
    """Outcome + evidence of one campaign."""

    config: ChaosConfig
    requests: int = 0
    accepted: int = 0
    shed: int = 0
    correct: int = 0
    wrong: int = 0
    failed: int = 0
    availability: float = 1.0
    p50_s: float = 0.0
    p95_s: float = 0.0
    p99_s: float = 0.0
    recovery_s: float = 0.0
    campaign_s: float = 0.0
    ladder: Dict[str, int] = field(default_factory=dict)
    violations: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def to_dict(self) -> Dict[str, Any]:
        return {
            "seed": self.config.seed,
            "faults": dict(self.config.faults),
            "requests": self.requests,
            "accepted": self.accepted,
            "shed": self.shed,
            "correct": self.correct,
            "wrong": self.wrong,
            "failed": self.failed,
            "availability": round(self.availability, 6),
            "latency_p50_s": round(self.p50_s, 6),
            "latency_p95_s": round(self.p95_s, 6),
            "latency_p99_s": round(self.p99_s, 6),
            "recovery_s": round(self.recovery_s, 6),
            "campaign_s": round(self.campaign_s, 6),
            "ladder": dict(self.ladder),
            "violations": list(self.violations),
            "ok": self.ok,
        }


def _canonical_prediction(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Strip the wall-clock-only fields from a /predict response."""
    canonical = dict(payload)
    canonical.pop("runtime_seconds", None)
    canonical.pop("serve", None)
    return canonical


def _canonical_whatif(payload: Dict[str, Any]) -> Dict[str, Any]:
    return dict(payload)


class _Client:
    """One worker thread's HTTP client (its own keep-alive connection)."""

    def __init__(self, host: str, port: int, timeout: float):
        self.host = host
        self.port = port
        self.timeout = timeout
        self._conn: Optional[http.client.HTTPConnection] = None

    def post(self, path: str, payload: Dict[str, Any]):
        body = json.dumps(payload).encode()
        for attempt in (0, 1):  # one transparent reconnect for torn keep-alive
            if self._conn is None:
                self._conn = http.client.HTTPConnection(
                    self.host, self.port, timeout=self.timeout
                )
            try:
                self._conn.request(
                    "POST", path, body=body, headers={"Content-Type": "application/json"}
                )
                response = self._conn.getresponse()
                data = json.loads(response.read())
                if response.will_close:
                    self._conn.close()
                    self._conn = None
                return response.status, data
            except (OSError, http.client.HTTPException, json.JSONDecodeError):
                try:
                    self._conn.close()
                except Exception:
                    pass
                self._conn = None
                if attempt:
                    raise
        raise AssertionError("unreachable")

    def close(self) -> None:
        if self._conn is not None:
            with contextlib.suppress(Exception):
                self._conn.close()
            self._conn = None


def _default_records_and_timer(config: ChaosConfig):
    """Build the campaign's design set and a small fitted timer (cached)."""
    from repro.core import build_dataset
    from repro.core.pipeline import RTLTimer, RTLTimerConfig
    from repro.core.bitwise import BitwiseConfig
    from repro.core.overall import OverallConfig
    from repro.core.signalwise import SignalwiseConfig
    from repro.hdl.generate import BENCHMARK_SPECS

    specs = BENCHMARK_SPECS[: max(config.designs, 2)]
    records = build_dataset(specs)
    timer_config = RTLTimerConfig(
        bitwise=BitwiseConfig(
            n_estimators=10, max_depth=4, max_train_endpoints_per_design=40
        ),
        signalwise=SignalwiseConfig(n_estimators=10, ranker_estimators=10),
        overall=OverallConfig(n_estimators=8),
    )
    return records, RTLTimer(timer_config).fit(records)


def run_campaign(
    config: ChaosConfig,
    records=None,
    timer=None,
    report: Optional[report_mod.RuntimeReport] = None,
) -> ChaosResult:
    """Run one chaos campaign; returns its :class:`ChaosResult`.

    ``records``/``timer`` can be injected (tests reuse tiny fixtures); by
    default a small benchmark subset is built and a fast timer fitted.
    The campaign mutates ``REPRO_FAULT_INJECT`` and ``REPRO_CACHE_DIR`` for
    its duration and restores both.
    """
    result = ChaosResult(config=config)
    report = report if report is not None else report_mod.RuntimeReport()
    if records is None or timer is None:
        records, timer = _default_records_and_timer(config)
    records = list(records)[: max(config.designs, 1)]

    # Healthy oracle, computed before any fault is armed.
    predict_oracle = {
        record.name: _canonical_prediction(prediction_to_json(timer.predict(record)))
        for record in records
    }
    whatif_k = 2
    whatif_oracle = {
        record.name: _whatif_json(record, timer.what_if(record, k=whatif_k))
        for record in records
    }

    saved_env = {
        name: os.environ.get(name) for name in (FAULT_ENV_VAR, CACHE_DIR_ENV_VAR)
    }
    campaign_started = time.perf_counter()
    with tempfile.TemporaryDirectory(prefix="repro-chaos-cache-") as cache_dir:
        try:
            # An isolated disk cache: corruption chaos must never eat the
            # user's real artifact cache, and a cold cache makes the
            # raw-source path deterministic (first build stores, later
            # reads draw the corruption fault).
            os.environ[CACHE_DIR_ENV_VAR] = cache_dir
            reset_draws()
            if config.faults:
                os.environ[FAULT_ENV_VAR] = format_faults(config.faults, seed=config.seed)
            else:
                os.environ.pop(FAULT_ENV_VAR, None)

            service = PooledTimingService(
                timer,
                config=ServeConfig(
                    batch_window_s=0.02,
                    deadline_s=config.deadline_s,
                    # Keep the in-memory record LRU smaller than the design
                    # rotation so raw-source requests keep hitting the disk
                    # cache (where corruption + kernel faults live).
                    record_cache_entries=1,
                ),
                report=report,
                pool_config=PoolConfig(
                    workers=config.workers,
                    heartbeat_interval_s=0.05,
                    heartbeat_timeout_s=config.heartbeat_timeout_s,
                    hang_timeout_s=config.hang_timeout_s,
                    backoff_base_s=0.05,
                    backoff_max_s=config.backoff_max_s,
                ),
            )
            server = start_server(service, port=0)
            for record in records:
                server.register_record(record)
            host, port = server.server_address
            try:
                _drive_traffic(config, records, predict_oracle, whatif_oracle,
                               whatif_k, host, port, result)
                _directed_ladder(
                    config, records, predict_oracle, report, host, port, result
                )
                # Recovery: disarm faults (fresh forks inherit the clean
                # environment; crashed workers respawn clean) and measure
                # how long until every design answers correctly again.
                os.environ.pop(FAULT_ENV_VAR, None)
                result.recovery_s = _measure_recovery(
                    config, records, predict_oracle, host, port, result
                )
            finally:
                server.shutdown()
                service.close()
        finally:
            for name, value in saved_env.items():
                if value is None:
                    os.environ.pop(name, None)
                else:
                    os.environ[name] = value

    result.campaign_s = time.perf_counter() - campaign_started
    _finalize(config, report, result)
    return result


def _whatif_json(record, estimates) -> Dict[str, Any]:
    """The /whatif JSON shape (mirrors the HTTP handler, minus transport)."""
    return {
        "design": record.name,
        "candidates": [
            {
                "index": index,
                "wns": float(estimate.wns),
                "tns": float(estimate.tns),
                "n_patches": int(estimate.n_patches),
                "uses_grouping": bool(estimate.options.uses_grouping),
                "uses_retiming": bool(estimate.options.uses_retiming),
                "retime_signals": list(estimate.options.retime_signals or []),
            }
            for index, estimate in enumerate(estimates)
        ],
    }


def _drive_traffic(
    config: ChaosConfig,
    records,
    predict_oracle: Dict[str, Dict[str, Any]],
    whatif_oracle: Dict[str, Dict[str, Any]],
    whatif_k: int,
    host: str,
    port: int,
    result: ChaosResult,
) -> None:
    lock = threading.Lock()
    latencies: List[float] = []
    counter = iter(range(config.requests))

    def next_index() -> Optional[int]:
        with lock:
            return next(counter, None)

    def run_client() -> None:
        client = _Client(host, port, timeout=config.deadline_s + 10.0)
        try:
            while (index := next_index()) is not None:
                record = records[index % len(records)]
                if config.whatif_every and index % config.whatif_every == config.whatif_every - 1:
                    path, payload = "/whatif", {"name": record.name, "k": whatif_k}
                    oracle = whatif_oracle[record.name]
                    canon = _canonical_whatif
                elif config.raw_source_every and index % config.raw_source_every == config.raw_source_every - 1:
                    path = "/predict"
                    payload = {"source": record.source, "name": record.name}
                    oracle = predict_oracle[record.name]
                    canon = _canonical_prediction
                else:
                    path, payload = "/predict", {"name": record.name}
                    oracle = predict_oracle[record.name]
                    canon = _canonical_prediction
                started = time.perf_counter()
                try:
                    status, body = client.post(path, payload)
                except Exception as exc:
                    with lock:
                        result.requests += 1
                        result.accepted += 1
                        result.failed += 1
                        result.violations.append(
                            f"request {index} ({path}) transport failure: {exc!r}"
                        )
                    continue
                elapsed = time.perf_counter() - started
                with lock:
                    result.requests += 1
                    if status == 429:
                        result.shed += 1
                        continue
                    result.accepted += 1
                    latencies.append(elapsed)
                    if status != 200:
                        result.failed += 1
                        result.violations.append(
                            f"request {index} ({path}) lost: HTTP {status} {body.get('error')!r}"
                        )
                    elif canon(body) == oracle:
                        result.correct += 1
                    else:
                        result.wrong += 1
                        result.violations.append(
                            f"request {index} ({path}) WRONG ANSWER for {record.name}"
                        )
        finally:
            client.close()

    threads = [
        threading.Thread(target=run_client, name=f"chaos-client-{i}", daemon=True)
        for i in range(max(config.concurrency, 1))
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    latencies.sort()
    if latencies:
        result.p50_s = _pct(latencies, 0.50)
        result.p95_s = _pct(latencies, 0.95)
        result.p99_s = _pct(latencies, 0.99)


def _directed_ladder(
    config: ChaosConfig,
    records,
    predict_oracle: Dict[str, Dict[str, Any]],
    report: report_mod.RuntimeReport,
    host: str,
    port: int,
    result: ChaosResult,
) -> None:
    """Arm each configured fault alone at p=1 and drive traffic shaped to hit it.

    The probabilistic phase is faithful chaos but can leave a low-probability
    fault undrawn on some seeds; this sweep makes "every ladder step
    exercised" hold deterministically.  Requests here obey the same
    invariants as the main phase — every answer is still checked against the
    healthy oracle.
    """

    def evidenced(fault: str) -> bool:
        counters = dict(report.counters)
        evidence = FAULT_EVIDENCE.get(fault, ())
        return not evidence or any(counters.get(name, 0) > 0 for name in evidence)

    def check(index_tag: str, record, status: int, body: Dict[str, Any]) -> None:
        result.requests += 1
        if status == 429:
            result.shed += 1
            return
        result.accepted += 1
        if status != 200:
            result.failed += 1
            result.violations.append(
                f"directed {index_tag} lost: HTTP {status} {body.get('error')!r}"
            )
        elif _canonical_prediction(body) == predict_oracle[record.name]:
            result.correct += 1
        else:
            result.wrong += 1
            result.violations.append(
                f"directed {index_tag} WRONG ANSWER for {record.name}"
            )

    client = _Client(host, port, timeout=config.deadline_s + 10.0)
    try:
        for fault in config.faults:
            if evidenced(fault):
                continue
            os.environ[FAULT_ENV_VAR] = format_faults({fault: 1.0}, seed=config.seed)
            for attempt in range(6):
                if fault == "serve.batch_fail":
                    # A batch only forms from concurrent arrivals: post the
                    # whole design set at once from separate threads.
                    statuses: List[Any] = [None] * len(records)

                    def fire(slot: int, record) -> None:
                        try:
                            statuses[slot] = (record, *client_pool[slot].post(
                                "/predict", {"name": record.name}
                            ))
                        except Exception as exc:
                            statuses[slot] = (record, -1, {"error": repr(exc)})

                    client_pool = [
                        _Client(host, port, timeout=config.deadline_s + 10.0)
                        for _ in records
                    ]
                    threads = [
                        threading.Thread(target=fire, args=(slot, record), daemon=True)
                        for slot, record in enumerate(records)
                    ]
                    for thread in threads:
                        thread.start()
                    for thread in threads:
                        thread.join()
                    for slot_client in client_pool:
                        slot_client.close()
                    for record, status, body in statuses:
                        check(f"{fault}[{attempt}]", record, status, body)
                elif fault == "cache.corrupt_entry":
                    # Two raw-source posts per design: the first stores the
                    # built record in the (cold or evicted) disk cache, the
                    # second reads it back through the corruption hook.
                    for record in records:
                        for _ in range(2):
                            status, body = client.post(
                                "/predict",
                                {"source": record.source, "name": record.name},
                            )
                            check(f"{fault}[{attempt}]", record, status, body)
                elif fault == "kernel.exception":
                    # Whitespace-padded source changes the cache key, forcing
                    # a fresh elaboration + STA build through the kernel
                    # fallback guard (a plain repeat would be a cache hit).
                    record = records[attempt % len(records)]
                    status, body = client.post(
                        "/predict",
                        {
                            "source": record.source + "\n" * (attempt + 1),
                            "name": record.name,
                        },
                    )
                    check(f"{fault}[{attempt}]", record, status, body)
                else:  # worker.crash / worker.hang / worker.slow_io
                    record = records[attempt % len(records)]
                    status, body = client.post("/predict", {"name": record.name})
                    check(f"{fault}[{attempt}]", record, status, body)
                if evidenced(fault):
                    break
    finally:
        client.close()
        if config.faults:
            os.environ[FAULT_ENV_VAR] = format_faults(config.faults, seed=config.seed)


def _measure_recovery(
    config: ChaosConfig,
    records,
    predict_oracle: Dict[str, Dict[str, Any]],
    host: str,
    port: int,
    result: ChaosResult,
) -> float:
    """Seconds until every design answers correctly again (faults cleared)."""
    client = _Client(host, port, timeout=config.deadline_s + 10.0)
    started = time.perf_counter()
    deadline = started + config.recovery_timeout_s
    try:
        while True:
            healthy = True
            for record in records:
                try:
                    status, body = client.post("/predict", {"name": record.name})
                except Exception:
                    healthy = False
                    break
                if status != 200 or _canonical_prediction(body) != predict_oracle[record.name]:
                    healthy = False
                    break
            if healthy:
                return time.perf_counter() - started
            if time.perf_counter() > deadline:
                result.violations.append(
                    f"no recovery within {config.recovery_timeout_s:g}s of clearing faults"
                )
                return time.perf_counter() - started
            time.sleep(0.1)
    finally:
        client.close()


def _pct(sorted_values: List[float], fraction: float) -> float:
    index = min(
        len(sorted_values) - 1, max(0, int(round(fraction * (len(sorted_values) - 1))))
    )
    return sorted_values[index]


def _finalize(
    config: ChaosConfig, report: report_mod.RuntimeReport, result: ChaosResult
) -> None:
    """Invariant checks + stage/counter publication."""
    result.availability = (
        result.correct / result.accepted if result.accepted else 1.0
    )
    counters = dict(report.counters)
    result.ladder = {
        name: counters.get(name, 0)
        for name in (
            "serve_worker_restarts",
            "serve_request_retries",
            "serve_degraded_kernel_reference",
            "serve_degraded_cache_recompute",
            "serve_degraded_serial_predict",
            "serve_pool_local_fallbacks",
            "cache_corrupt",
        )
    }
    if result.wrong:
        result.violations.append(f"{result.wrong} wrong answers (invariant: zero)")
    if result.failed:
        result.violations.append(
            f"{result.failed} accepted requests lost (invariant: zero)"
        )
    if result.availability < config.availability_floor:
        result.violations.append(
            f"availability {result.availability:.4f} below floor "
            f"{config.availability_floor:g}"
        )
    for fault in config.faults:
        for counter in FAULT_EVIDENCE.get(fault, ()):
            if counters.get(counter, 0) > 0:
                break
        else:
            if FAULT_EVIDENCE.get(fault):
                result.violations.append(
                    f"fault {fault!r} left no evidence (expected one of "
                    f"{list(FAULT_EVIDENCE[fault])} to move)"
                )
    # Deduplicate repeated per-request violation lines (keep order).
    result.violations = list(dict.fromkeys(result.violations))

    report.stages[CAMPAIGN_STAGE] = result.campaign_s
    report.stage_calls[CAMPAIGN_STAGE] = 1
    for stage, value in (
        (P50_STAGE, result.p50_s),
        (P95_STAGE, result.p95_s),
        (P99_STAGE, result.p99_s),
        (RECOVERY_STAGE, result.recovery_s),
        (AVAILABILITY_STAGE, result.availability),
    ):
        report.stages[stage] = value
        report.stage_calls[stage] = 1
    report.incr("chaos_requests", result.requests)
    report.incr("chaos_accepted", result.accepted)
    report.incr("chaos_shed", result.shed)
    report.incr("chaos_correct", result.correct)
    report.incr("chaos_wrong", result.wrong)
    report.incr("chaos_failed", result.failed)


def write_bundle(result: ChaosResult, directory: os.PathLike) -> Path:
    """Persist a replayable campaign bundle; returns its path."""
    path = Path(directory)
    path.mkdir(parents=True, exist_ok=True)
    bundle = {
        "schema": CHAOS_BUNDLE_SCHEMA,
        "replay": {
            "seed": result.config.seed,
            "requests": result.config.requests,
            "concurrency": result.config.concurrency,
            "workers": result.config.workers,
            "designs": result.config.designs,
            "faults": dict(result.config.faults),
        },
        "result": result.to_dict(),
    }
    destination = path / f"chaos-seed{result.config.seed}.json"
    destination.write_text(json.dumps(bundle, indent=2) + "\n")
    return destination


def _parse_fault_arg(raw: Optional[str]) -> Dict[str, float]:
    if raw is None:
        return dict(DEFAULT_FAULTS)
    if raw in ("", "none"):
        return {}
    faults: Dict[str, float] = {}
    for entry in raw.split(","):
        name, _, probability = entry.strip().partition("=")
        if name not in FAULT_REGISTRY:
            raise SystemExit(
                f"unknown fault {name!r}; known: {', '.join(sorted(FAULT_REGISTRY))}"
            )
        faults[name] = float(probability) if probability else 1.0
    return faults


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro chaos",
        description="Seed-replayable fault-injection campaign against the serving stack.",
    )
    parser.add_argument("--seed", type=int, default=0, help="campaign seed (default 0)")
    parser.add_argument("--requests", type=int, default=60, help="requests to drive (default 60)")
    parser.add_argument("--concurrency", type=int, default=6, help="client threads (default 6)")
    parser.add_argument("--workers", type=int, default=2, help="pool workers (default 2)")
    parser.add_argument("--designs", type=int, default=3, help="designs in the traffic mix (default 3)")
    parser.add_argument(
        "--faults",
        default=None,
        help="fault mix name=prob,... ('none' for a fault-free baseline; "
        "default: the standard ladder-covering mix)",
    )
    parser.add_argument("--deadline", type=float, default=30.0, help="per-request deadline seconds")
    parser.add_argument(
        "--recovery-timeout", type=float, default=20.0, help="recovery bound seconds (default 20)"
    )
    parser.add_argument(
        "--availability-floor", type=float, default=0.99, help="minimum accepted-traffic availability"
    )
    parser.add_argument("--artifacts", default=None, help="directory for failing-campaign bundles")
    parser.add_argument("--bench-out", default=None, help="write a BENCH_runtime.json report here")
    args = parser.parse_args(argv)

    config = ChaosConfig(
        seed=args.seed,
        requests=args.requests,
        concurrency=args.concurrency,
        workers=args.workers,
        designs=args.designs,
        faults=_parse_fault_arg(args.faults),
        deadline_s=args.deadline,
        recovery_timeout_s=args.recovery_timeout,
        availability_floor=args.availability_floor,
    )
    report = report_mod.RuntimeReport(
        meta={"command": "chaos", "seed": config.seed, "faults": dict(config.faults)}
    )
    result = run_campaign(config, report=report)
    print(json.dumps(result.to_dict(), indent=2))
    if args.bench_out:
        destination = report.write(args.bench_out)
        print(f"runtime report: {destination}", file=sys.stderr)
    if not result.ok:
        directory = args.artifacts or "chaos-artifacts"
        bundle = write_bundle(result, directory)
        print(f"campaign FAILED; replay bundle: {bundle}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
