"""Minimal estimator protocol shared by the from-scratch ML models.

No ML framework is available in this environment, so the models the paper
uses (XGBoost-style boosted trees, MLPs, a transformer, LambdaMART and a GNN
baseline) are implemented from scratch on numpy in this package.  They all
follow the small fit/predict protocol defined here so the RTL-Timer pipeline
can swap them freely.
"""

from __future__ import annotations

from typing import Any, Dict

import numpy as np


class Estimator:
    """Base class: parameter bookkeeping plus the fit/predict contract."""

    def get_params(self) -> Dict[str, Any]:
        """Public constructor parameters (attributes not ending in '_')."""
        return {
            key: value
            for key, value in vars(self).items()
            if not key.endswith("_") and not key.startswith("_")
        }

    def fit(self, features: np.ndarray, targets: np.ndarray) -> "Estimator":
        raise NotImplementedError

    def predict(self, features: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def _check_fitted(self, attribute: str) -> None:
        if not hasattr(self, attribute):
            raise RuntimeError(
                f"{type(self).__name__} must be fitted before calling predict()"
            )


def as_2d_array(features: Any) -> np.ndarray:
    """Coerce input features to a contiguous 2-D float array."""
    array = np.asarray(features, dtype=float)
    if array.ndim == 1:
        array = array.reshape(-1, 1)
    if array.ndim != 2:
        raise ValueError(f"expected a 2-D feature matrix, got shape {array.shape}")
    return np.ascontiguousarray(array)


def as_1d_array(targets: Any) -> np.ndarray:
    """Coerce targets to a 1-D float array."""
    array = np.asarray(targets, dtype=float).ravel()
    return np.ascontiguousarray(array)
