"""Minimal estimator protocol shared by the from-scratch ML models.

No ML framework is available in this environment, so the models the paper
uses (XGBoost-style boosted trees, MLPs, a transformer, LambdaMART and a GNN
baseline) are implemented from scratch on numpy in this package.  They all
follow the small fit/predict protocol defined here so the RTL-Timer pipeline
can swap them freely.

Every estimator additionally supports structural serialization through
:meth:`Estimator.to_state` / :meth:`Estimator.from_state`: the state is a
plain dict of python scalars, lists and numpy arrays (no live object graph),
which is what the model registry (:mod:`repro.serve.registry`) persists.
Restoring a state yields an estimator whose ``predict`` is bit-identical to
the original — the arrays are carried verbatim, only training-time scratch
(optimizer moments, RNG, cached training predictions) is dropped.
"""

from __future__ import annotations

from typing import Any, Dict, Mapping

import numpy as np


class Estimator:
    """Base class: parameter bookkeeping plus the fit/predict/state contract."""

    def get_params(self) -> Dict[str, Any]:
        """Public constructor parameters (attributes not ending in '_')."""
        return {
            key: value
            for key, value in vars(self).items()
            if not key.endswith("_") and not key.startswith("_")
        }

    def fit(self, features: np.ndarray, targets: np.ndarray) -> "Estimator":
        """Fit the estimator on ``(features, targets)``; returns ``self``."""
        raise NotImplementedError

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Per-row predictions for a fitted estimator."""
        raise NotImplementedError

    # -- structural serialization ------------------------------------------------

    def to_state(self) -> Dict[str, Any]:
        """Serializable snapshot of this fitted estimator.

        Returns ``{"estimator": <class name>, "params": <constructor args>,
        "fitted": <learned arrays/scalars>}``.  Subclasses implement
        :meth:`_fitted_state` / :meth:`_restore_fitted`; training-only
        scratch state is intentionally not part of the snapshot.
        """
        return {
            "estimator": type(self).__name__,
            "params": self._state_params(),
            "fitted": self._fitted_state(),
        }

    @classmethod
    def from_state(cls, state: Mapping[str, Any]) -> "Estimator":
        """Rebuild an estimator from a :meth:`to_state` snapshot.

        The restored estimator predicts bit-identically to the one that was
        snapshotted.  Raises ``ValueError`` when the state names a different
        estimator class.
        """
        name = state.get("estimator")
        if name != cls.__name__:
            raise ValueError(f"state is for estimator {name!r}, not {cls.__name__}")
        model = cls(**cls._params_from_state(state.get("params", {})))
        model._restore_fitted(state.get("fitted", {}))
        return model

    def _state_params(self) -> Dict[str, Any]:
        """Constructor arguments stored in the state (default: get_params)."""
        return self.get_params()

    @classmethod
    def _params_from_state(cls, params: Mapping[str, Any]) -> Dict[str, Any]:
        """Inverse of :meth:`_state_params`: state params -> constructor args."""
        return dict(params)

    def _fitted_state(self) -> Dict[str, Any]:
        raise NotImplementedError(f"{type(self).__name__} does not support to_state()")

    def _restore_fitted(self, fitted: Mapping[str, Any]) -> None:
        raise NotImplementedError(f"{type(self).__name__} does not support from_state()")

    def _check_fitted(self, attribute: str) -> None:
        if not hasattr(self, attribute):
            raise RuntimeError(
                f"{type(self).__name__} must be fitted before calling predict()"
            )


def as_2d_array(features: Any) -> np.ndarray:
    """Coerce input features to a contiguous 2-D float array."""
    array = np.asarray(features, dtype=float)
    if array.ndim == 1:
        array = array.reshape(-1, 1)
    if array.ndim != 2:
        raise ValueError(f"expected a 2-D feature matrix, got shape {array.shape}")
    return np.ascontiguousarray(array)


def as_1d_array(targets: Any) -> np.ndarray:
    """Coerce targets to a 1-D float array."""
    array = np.asarray(targets, dtype=float).ravel()
    return np.ascontiguousarray(array)
