"""From-scratch ML substrate (no external ML framework required)."""

from repro.ml.base import Estimator, as_1d_array, as_2d_array
from repro.ml.preprocessing import (
    MinMaxScaler,
    StandardScaler,
    TargetScaler,
    group_kfold,
    leave_one_group_out,
    train_test_split,
)
from repro.ml.tree import (
    BINS_ENV_VAR,
    BinnedMatrix,
    DecisionTreeRegressor,
    FlatTree,
    NewtonTreeRegressor,
    bin_feature_matrix,
    resolve_max_bins,
)
from repro.ml.gbm import (
    GradientBoostingRegressor,
    HuberObjective,
    SquaredErrorObjective,
)
from repro.ml.losses import (
    GroupedMaxSquaredError,
    group_argmax,
    group_max,
    grouped_max_loss_and_gradient,
    grouped_softmax_loss_and_gradient,
)
from repro.ml.mlp import MLPRegressor
from repro.ml.transformer import TransformerPathRegressor, pad_sequences
from repro.ml.lambdamart import LambdaMARTRanker, dcg_at_k, ndcg
from repro.ml.gnn import GNNRegressor, GraphData
from repro.ml.serialize import ESTIMATOR_MODULES, estimator_from_state, estimator_to_state

__all__ = [
    "Estimator",
    "as_1d_array",
    "as_2d_array",
    "MinMaxScaler",
    "StandardScaler",
    "TargetScaler",
    "group_kfold",
    "leave_one_group_out",
    "train_test_split",
    "BINS_ENV_VAR",
    "BinnedMatrix",
    "DecisionTreeRegressor",
    "FlatTree",
    "NewtonTreeRegressor",
    "bin_feature_matrix",
    "resolve_max_bins",
    "GradientBoostingRegressor",
    "HuberObjective",
    "SquaredErrorObjective",
    "GroupedMaxSquaredError",
    "group_argmax",
    "group_max",
    "grouped_max_loss_and_gradient",
    "grouped_softmax_loss_and_gradient",
    "MLPRegressor",
    "TransformerPathRegressor",
    "pad_sequences",
    "LambdaMARTRanker",
    "dcg_at_k",
    "ndcg",
    "GNNRegressor",
    "GraphData",
    "ESTIMATOR_MODULES",
    "estimator_from_state",
    "estimator_to_state",
]
