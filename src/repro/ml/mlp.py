"""Multilayer perceptron regressor (numpy, Adam optimizer).

Supports two training modes:

* plain regression (``fit``): mean squared error on per-row targets,
* grouped max-arrival training (``fit_grouped_max``): the paper's customized
  loss, where every row is one sampled path, rows are grouped per endpoint,
  and the endpoint prediction is the (soft) maximum over its paths.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.ml.base import Estimator, as_1d_array, as_2d_array
from repro.ml.losses import (
    grouped_max_loss_and_gradient,
    grouped_softmax_loss_and_gradient,
)


class _AdamState:
    """Adam optimizer state for one parameter tensor."""

    def __init__(self, shape: Tuple[int, ...]):
        self.m = np.zeros(shape)
        self.v = np.zeros(shape)
        self.t = 0

    def update(self, gradient: np.ndarray, lr: float, beta1=0.9, beta2=0.999, eps=1e-8) -> np.ndarray:
        self.t += 1
        self.m = beta1 * self.m + (1 - beta1) * gradient
        self.v = beta2 * self.v + (1 - beta2) * gradient**2
        m_hat = self.m / (1 - beta1**self.t)
        v_hat = self.v / (1 - beta2**self.t)
        return lr * m_hat / (np.sqrt(v_hat) + eps)


class MLPRegressor(Estimator):
    """Fully connected network with ReLU activations and an Adam optimizer."""

    def __init__(
        self,
        hidden_sizes: Sequence[int] = (512, 512, 512),
        learning_rate: float = 1e-3,
        epochs: int = 120,
        batch_size: int = 256,
        weight_decay: float = 1e-5,
        seed: int = 0,
        verbose: bool = False,
    ):
        self.hidden_sizes = tuple(hidden_sizes)
        self.learning_rate = learning_rate
        self.epochs = epochs
        self.batch_size = batch_size
        self.weight_decay = weight_decay
        self.seed = seed
        self.verbose = verbose

    # -- parameter handling -----------------------------------------------------

    def _init_parameters(self, n_features: int) -> None:
        rng = np.random.default_rng(self.seed)
        sizes = [n_features, *self.hidden_sizes, 1]
        self.weights_: List[np.ndarray] = []
        self.biases_: List[np.ndarray] = []
        for fan_in, fan_out in zip(sizes, sizes[1:]):
            limit = np.sqrt(6.0 / (fan_in + fan_out))
            self.weights_.append(rng.uniform(-limit, limit, size=(fan_in, fan_out)))
            self.biases_.append(np.zeros(fan_out))
        self._adam_w_ = [_AdamState(w.shape) for w in self.weights_]
        self._adam_b_ = [_AdamState(b.shape) for b in self.biases_]

    # -- forward / backward -------------------------------------------------------

    def _forward(self, X: np.ndarray) -> Tuple[np.ndarray, List[np.ndarray]]:
        activations = [X]
        hidden = X
        for layer, (weight, bias) in enumerate(zip(self.weights_, self.biases_)):
            pre = hidden @ weight + bias
            if layer < len(self.weights_) - 1:
                hidden = np.maximum(pre, 0.0)
            else:
                hidden = pre
            activations.append(hidden)
        return hidden.ravel(), activations

    def _backward(
        self, activations: List[np.ndarray], output_gradient: np.ndarray
    ) -> Tuple[List[np.ndarray], List[np.ndarray]]:
        grad_w = [np.zeros_like(w) for w in self.weights_]
        grad_b = [np.zeros_like(b) for b in self.biases_]
        delta = output_gradient.reshape(-1, 1)
        for layer in range(len(self.weights_) - 1, -1, -1):
            grad_w[layer] = activations[layer].T @ delta + self.weight_decay * self.weights_[layer]
            grad_b[layer] = delta.sum(axis=0)
            if layer > 0:
                delta = delta @ self.weights_[layer].T
                delta = delta * (activations[layer] > 0.0)
        return grad_w, grad_b

    def _apply_gradients(self, grad_w, grad_b) -> None:
        for layer in range(len(self.weights_)):
            self.weights_[layer] -= self._adam_w_[layer].update(grad_w[layer], self.learning_rate)
            self.biases_[layer] -= self._adam_b_[layer].update(grad_b[layer], self.learning_rate)

    # -- public API ---------------------------------------------------------------

    def fit(self, features: np.ndarray, targets: np.ndarray) -> "MLPRegressor":
        X = as_2d_array(features)
        y = as_1d_array(targets)
        if len(X) != len(y):
            raise ValueError("features and targets must have the same number of rows")
        self._init_parameters(X.shape[1])
        rng = np.random.default_rng(self.seed)
        self.train_losses_: List[float] = []

        for epoch in range(self.epochs):
            order = rng.permutation(len(X))
            epoch_loss = 0.0
            n_batches = 0
            for start in range(0, len(X), self.batch_size):
                batch = order[start : start + self.batch_size]
                predictions, activations = self._forward(X[batch])
                residual = predictions - y[batch]
                loss = 0.5 * float(np.mean(residual**2))
                output_gradient = residual / len(batch)
                grad_w, grad_b = self._backward(activations, output_gradient)
                self._apply_gradients(grad_w, grad_b)
                epoch_loss += loss
                n_batches += 1
            self.train_losses_.append(epoch_loss / max(n_batches, 1))
            if self.verbose and epoch % 10 == 0:
                print(f"epoch {epoch}: loss {self.train_losses_[-1]:.5f}")
        return self

    def fit_grouped_max(
        self,
        features: np.ndarray,
        groups: np.ndarray,
        group_targets: np.ndarray,
        softmax_temperature: Optional[float] = 6.0,
    ) -> "MLPRegressor":
        """Train with the max arrival-time loss over path groups.

        During the first half of training a smooth log-sum-exp maximum is used
        (gradient reaches every sampled path); the second half switches to the
        hard maximum, matching Equation 3 of the paper.
        """
        X = as_2d_array(features)
        groups = np.asarray(groups, dtype=int).ravel()
        y_group = as_1d_array(group_targets)
        if len(X) != len(groups):
            raise ValueError("features and groups must align")
        self._init_parameters(X.shape[1])
        self.train_losses_ = []

        for epoch in range(self.epochs):
            predictions, activations = self._forward(X)
            use_soft = softmax_temperature is not None and epoch < self.epochs // 2
            if use_soft:
                loss, gradient = grouped_softmax_loss_and_gradient(
                    predictions, groups, y_group, temperature=softmax_temperature
                )
            else:
                loss, gradient = grouped_max_loss_and_gradient(predictions, groups, y_group)
            grad_w, grad_b = self._backward(activations, gradient)
            self._apply_gradients(grad_w, grad_b)
            self.train_losses_.append(loss)
        return self

    def predict(self, features: np.ndarray) -> np.ndarray:
        self._check_fitted("weights_")
        X = as_2d_array(features)
        predictions, _ = self._forward(X)
        return predictions

    # -- serialization ------------------------------------------------------------

    def _fitted_state(self) -> dict:
        """Layer weights/biases; Adam moments are training-only and dropped."""
        self._check_fitted("weights_")
        return {
            "weights": [w.copy() for w in self.weights_],
            "biases": [b.copy() for b in self.biases_],
        }

    def _restore_fitted(self, fitted) -> None:
        self.weights_ = [np.asarray(w, dtype=float) for w in fitted["weights"]]
        self.biases_ = [np.asarray(b, dtype=float) for b in fitted["biases"]]
