"""Feature preprocessing and cross-validation utilities."""

from __future__ import annotations

from typing import Iterator, List, Sequence, Tuple

import numpy as np

from repro.ml.base import as_1d_array, as_2d_array


class StandardScaler:
    """Zero-mean / unit-variance feature scaling."""

    def fit(self, features: np.ndarray) -> "StandardScaler":
        array = as_2d_array(features)
        self.mean_ = array.mean(axis=0)
        self.scale_ = array.std(axis=0)
        self.scale_[self.scale_ == 0.0] = 1.0
        return self

    def transform(self, features: np.ndarray) -> np.ndarray:
        array = as_2d_array(features)
        return (array - self.mean_) / self.scale_

    def fit_transform(self, features: np.ndarray) -> np.ndarray:
        return self.fit(features).transform(features)

    def inverse_transform(self, features: np.ndarray) -> np.ndarray:
        array = as_2d_array(features)
        return array * self.scale_ + self.mean_

    def to_state(self) -> dict:
        """Serializable snapshot (same shape the estimators use)."""
        return {
            "estimator": "StandardScaler",
            "params": {},
            "fitted": {"mean": self.mean_.copy(), "scale": self.scale_.copy()},
        }

    @classmethod
    def from_state(cls, state: dict) -> "StandardScaler":
        """Rebuild a fitted scaler from :meth:`to_state` output."""
        scaler = cls()
        scaler.mean_ = np.asarray(state["fitted"]["mean"], dtype=float)
        scaler.scale_ = np.asarray(state["fitted"]["scale"], dtype=float)
        return scaler


class MinMaxScaler:
    """Scale features into [0, 1] per column."""

    def fit(self, features: np.ndarray) -> "MinMaxScaler":
        array = as_2d_array(features)
        self.min_ = array.min(axis=0)
        span = array.max(axis=0) - self.min_
        span[span == 0.0] = 1.0
        self.span_ = span
        return self

    def transform(self, features: np.ndarray) -> np.ndarray:
        array = as_2d_array(features)
        return (array - self.min_) / self.span_

    def fit_transform(self, features: np.ndarray) -> np.ndarray:
        return self.fit(features).transform(features)

    def to_state(self) -> dict:
        """Serializable snapshot (same shape the estimators use)."""
        return {
            "estimator": "MinMaxScaler",
            "params": {},
            "fitted": {"min": self.min_.copy(), "span": self.span_.copy()},
        }

    @classmethod
    def from_state(cls, state: dict) -> "MinMaxScaler":
        """Rebuild a fitted scaler from :meth:`to_state` output."""
        scaler = cls()
        scaler.min_ = np.asarray(state["fitted"]["min"], dtype=float)
        scaler.span_ = np.asarray(state["fitted"]["span"], dtype=float)
        return scaler


class TargetScaler:
    """Standardize a 1-D target vector (and invert predictions back)."""

    def fit(self, targets: np.ndarray) -> "TargetScaler":
        array = as_1d_array(targets)
        self.mean_ = float(array.mean()) if array.size else 0.0
        std = float(array.std()) if array.size else 1.0
        self.scale_ = std if std > 0 else 1.0
        return self

    def transform(self, targets: np.ndarray) -> np.ndarray:
        return (as_1d_array(targets) - self.mean_) / self.scale_

    def fit_transform(self, targets: np.ndarray) -> np.ndarray:
        return self.fit(targets).transform(targets)

    def inverse_transform(self, targets: np.ndarray) -> np.ndarray:
        return as_1d_array(targets) * self.scale_ + self.mean_

    def to_state(self) -> dict:
        """Serializable snapshot (same shape the estimators use)."""
        return {
            "estimator": "TargetScaler",
            "params": {},
            "fitted": {"mean": float(self.mean_), "scale": float(self.scale_)},
        }

    @classmethod
    def from_state(cls, state: dict) -> "TargetScaler":
        """Rebuild a fitted scaler from :meth:`to_state` output."""
        scaler = cls()
        scaler.mean_ = float(state["fitted"]["mean"])
        scaler.scale_ = float(state["fitted"]["scale"])
        return scaler


def train_test_split(
    features: np.ndarray,
    targets: np.ndarray,
    test_fraction: float = 0.25,
    seed: int = 0,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Random row split into train and test partitions."""
    array = as_2d_array(features)
    target = as_1d_array(targets)
    if len(array) != len(target):
        raise ValueError("features and targets must have the same number of rows")
    rng = np.random.default_rng(seed)
    order = rng.permutation(len(array))
    n_test = int(round(len(array) * test_fraction))
    test_idx = order[:n_test]
    train_idx = order[n_test:]
    return array[train_idx], array[test_idx], target[train_idx], target[test_idx]


def group_kfold(groups: Sequence, n_splits: int, seed: int = 0) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
    """Cross-validation folds that never split one group across train/test.

    This is the paper's evaluation protocol: 10-fold cross-validation where
    training and test *designs* are strictly different.  ``groups`` assigns a
    group label (design name) to every row; the generator yields
    ``(train_row_indices, test_row_indices)`` pairs.
    """
    labels = np.asarray(groups)
    unique = np.array(sorted(set(labels.tolist()), key=str))
    if n_splits < 2:
        raise ValueError("n_splits must be at least 2")
    n_splits = min(n_splits, len(unique))
    rng = np.random.default_rng(seed)
    order = rng.permutation(len(unique))
    folds: List[List] = [[] for _ in range(n_splits)]
    for position, group_index in enumerate(order):
        folds[position % n_splits].append(unique[group_index])
    for fold_groups in folds:
        test_mask = np.isin(labels, fold_groups)
        test_idx = np.where(test_mask)[0]
        train_idx = np.where(~test_mask)[0]
        yield train_idx, test_idx


def leave_one_group_out(groups: Sequence) -> Iterator[Tuple[np.ndarray, np.ndarray, object]]:
    """Yield (train_idx, test_idx, group) triples, one per unique group."""
    labels = np.asarray(groups)
    for group in sorted(set(labels.tolist()), key=str):
        test_mask = labels == group
        yield np.where(~test_mask)[0], np.where(test_mask)[0], group
