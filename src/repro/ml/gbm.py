"""Gradient boosted regression trees (XGBoost-style).

Implements second-order gradient boosting with shrinkage, row subsampling and
feature subsampling on top of :class:`repro.ml.tree.NewtonTreeRegressor`.
Besides plain squared-error regression, the booster accepts a pluggable
objective, which is how RTL-Timer's customized *max arrival time* loss
(Equation 3 of the paper) is trained end to end: the objective sees the
current predictions of all sampled paths of an endpoint, takes the maximum,
and routes the gradient to the path that achieved it.
"""

from __future__ import annotations

from typing import Optional, Protocol, Tuple

import numpy as np

from repro.ml.base import Estimator, as_1d_array, as_2d_array
from repro.ml.tree import NewtonTreeRegressor, bin_feature_matrix
from repro.runtime.report import stage as _stage


class Objective(Protocol):
    """Pluggable boosting objective."""

    def initial_prediction(self, targets: np.ndarray) -> float:
        """Constant base score the booster starts from."""

    def gradients(
        self, predictions: np.ndarray, targets: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Per-row gradient and hessian of the loss at ``predictions``."""

    def loss(self, predictions: np.ndarray, targets: np.ndarray) -> float:
        """Scalar training loss (for monitoring / early stopping)."""


class SquaredErrorObjective:
    """Standard 0.5 * (y - p)^2 objective."""

    def initial_prediction(self, targets: np.ndarray) -> float:
        return float(np.mean(targets)) if len(targets) else 0.0

    def gradients(self, predictions, targets):
        grad = predictions - targets
        hess = np.ones_like(grad)
        return grad, hess

    def loss(self, predictions, targets) -> float:
        return float(0.5 * np.mean((predictions - targets) ** 2))


class HuberObjective:
    """Huber loss: quadratic near zero, linear in the tails (robust)."""

    def __init__(self, delta: float = 1.0):
        self.delta = delta

    def initial_prediction(self, targets: np.ndarray) -> float:
        return float(np.median(targets)) if len(targets) else 0.0

    def gradients(self, predictions, targets):
        residual = predictions - targets
        grad = np.clip(residual, -self.delta, self.delta)
        hess = (np.abs(residual) <= self.delta).astype(float)
        hess[hess == 0.0] = 1e-2
        return grad, hess

    def loss(self, predictions, targets) -> float:
        residual = np.abs(predictions - targets)
        quadratic = np.minimum(residual, self.delta)
        linear = residual - quadratic
        return float(np.mean(0.5 * quadratic**2 + self.delta * linear))


class GradientBoostingRegressor(Estimator):
    """Second-order gradient boosting over regression trees."""

    def __init__(
        self,
        n_estimators: int = 100,
        learning_rate: float = 0.1,
        max_depth: int = 6,
        min_samples_leaf: int = 3,
        subsample: float = 1.0,
        colsample: float = 1.0,
        reg_lambda: float = 1.0,
        objective: Optional[Objective] = None,
        early_stopping_rounds: Optional[int] = None,
        splitter: str = "hist",
        max_bins: Optional[int] = None,
        seed: int = 0,
    ):
        self.n_estimators = n_estimators
        self.learning_rate = learning_rate
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.subsample = subsample
        self.colsample = colsample
        self.reg_lambda = reg_lambda
        self.objective = objective or SquaredErrorObjective()
        self.early_stopping_rounds = early_stopping_rounds
        self.splitter = splitter
        self.max_bins = max_bins
        self.seed = seed

    # -- training --------------------------------------------------------------

    def fit(self, features: np.ndarray, targets: np.ndarray) -> "GradientBoostingRegressor":
        with _stage(f"ml.fit_{self.splitter}"):
            return self._fit(features, targets)

    def _fit(self, features: np.ndarray, targets: np.ndarray) -> "GradientBoostingRegressor":
        X = as_2d_array(features)
        y = as_1d_array(targets)
        if len(X) != len(y):
            raise ValueError("features and targets must have the same number of rows")
        rng = np.random.default_rng(self.seed)

        # Bin every feature column once per fit; each boosting round reuses
        # the codes (subset by the subsample mask) instead of re-binning.
        binned = bin_feature_matrix(X, self.max_bins) if self.splitter == "hist" else None

        self.base_score_ = self.objective.initial_prediction(y)
        predictions = np.full(len(y), self.base_score_)
        self.trees_: list[NewtonTreeRegressor] = []
        self.train_losses_: list[float] = []
        best_loss = np.inf
        rounds_since_best = 0

        for round_index in range(self.n_estimators):
            grad, hess = self.objective.gradients(predictions, y)

            if self.subsample < 1.0:
                mask = rng.random(len(y)) < self.subsample
                if not np.any(mask):
                    mask[rng.integers(len(y))] = True
            else:
                mask = np.ones(len(y), dtype=bool)

            tree = NewtonTreeRegressor(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                max_features=self.colsample if self.colsample < 1.0 else None,
                reg_lambda=self.reg_lambda,
                splitter=self.splitter,
                max_bins=self.max_bins,
                seed=int(rng.integers(2**31)),
            )
            round_binned = None
            full_batch = bool(mask.all())
            if binned is not None:
                round_binned = binned if full_batch else binned.take(mask)
            tree.fit_gradients(X[mask], grad[mask], hess[mask], binned=round_binned)
            if round_binned is not None and full_batch:
                # The histogram fit already assigned every training row to
                # its leaf; reuse those values instead of re-routing X.
                update = tree.training_predictions_
            else:
                update = tree.predict(X)
            predictions = predictions + self.learning_rate * update
            self.trees_.append(tree)

            loss = self.objective.loss(predictions, y)
            self.train_losses_.append(loss)
            if self.early_stopping_rounds is not None:
                if loss < best_loss - 1e-12:
                    best_loss = loss
                    rounds_since_best = 0
                else:
                    rounds_since_best += 1
                    if rounds_since_best >= self.early_stopping_rounds:
                        break
        return self

    def predict(self, features: np.ndarray) -> np.ndarray:
        self._check_fitted("trees_")
        X = as_2d_array(features)
        with _stage("ml.predict_flat"):
            predictions = np.full(len(X), self.base_score_)
            for tree in self.trees_:
                predictions += self.learning_rate * tree.predict(X)
        return predictions

    # -- serialization ----------------------------------------------------------

    def _state_params(self) -> dict:
        # The objective can hold training-time arrays (GroupedMaxSquaredError
        # keeps the endpoint groups and labels); inference never touches it,
        # so the state records only a descriptor instead of the live object.
        params = self.get_params()
        objective = params.pop("objective")
        descriptor = {"type": type(objective).__name__}
        if isinstance(objective, HuberObjective):
            descriptor["delta"] = objective.delta
        params["objective_descriptor"] = descriptor
        return params

    def _fitted_state(self) -> dict:
        self._check_fitted("trees_")
        return {
            "base_score": float(self.base_score_),
            "trees": [tree.to_state() for tree in self.trees_],
            "train_losses": [float(loss) for loss in self.train_losses_],
        }

    def _restore_fitted(self, fitted) -> None:
        self.base_score_ = float(fitted["base_score"])
        self.trees_ = [NewtonTreeRegressor.from_state(state) for state in fitted["trees"]]
        self.train_losses_ = list(fitted.get("train_losses", []))

    @classmethod
    def _params_from_state(cls, params) -> dict:
        params = dict(params)
        descriptor = params.pop("objective_descriptor", {"type": "SquaredErrorObjective"})
        if descriptor.get("type") == "HuberObjective":
            params["objective"] = HuberObjective(delta=descriptor.get("delta", 1.0))
        # Any other objective (incl. GroupedMaxSquaredError) restores as the
        # default squared error: predict() is objective-free, and refitting a
        # restored model needs fresh training groups anyway.
        return params

    def staged_predict(self, features: np.ndarray) -> np.ndarray:
        """Prediction matrix after each boosting round (rounds x rows)."""
        self._check_fitted("trees_")
        X = as_2d_array(features)
        predictions = np.full(len(X), self.base_score_)
        stages = np.empty((len(self.trees_), len(X)))
        for index, tree in enumerate(self.trees_):
            predictions = predictions + self.learning_rate * tree.predict(X)
            stages[index] = predictions
        return stages

    def feature_importances(self) -> np.ndarray:
        """Split-count feature importance, normalized to sum to one."""
        self._check_fitted("trees_")
        counts = np.zeros(self._n_features())
        for tree in self.trees_:
            stack = [tree.root_]
            while stack:
                node = stack.pop()
                if node.is_leaf:
                    continue
                counts[node.feature] += 1
                stack.append(node.left)
                stack.append(node.right)
        total = counts.sum()
        return counts / total if total > 0 else counts

    def _n_features(self) -> int:
        return self.trees_[0].n_features_ if self.trees_ else 0
