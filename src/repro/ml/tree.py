"""Regression trees (CART) used standalone and inside gradient boosting.

The splitter is an exact, variance-reduction splitter over sorted feature
columns with the usual regularization knobs (max depth, minimum samples per
leaf, feature subsampling).  Leaf values can be plain means (standalone use)
or Newton steps from per-sample gradients/hessians (XGBoost-style boosting).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.ml.base import Estimator, as_1d_array, as_2d_array


@dataclass
class _Node:
    """One node of a fitted tree (leaf when ``feature`` is None)."""

    value: float
    feature: Optional[int] = None
    threshold: float = 0.0
    left: Optional["_Node"] = None
    right: Optional["_Node"] = None

    @property
    def is_leaf(self) -> bool:
        return self.feature is None


class DecisionTreeRegressor(Estimator):
    """CART regression tree with exact variance-reduction splits."""

    def __init__(
        self,
        max_depth: int = 8,
        min_samples_split: int = 8,
        min_samples_leaf: int = 3,
        max_features: Optional[float] = None,
        min_impurity_decrease: float = 1e-9,
        seed: int = 0,
    ):
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.min_impurity_decrease = min_impurity_decrease
        self.seed = seed

    # -- public ---------------------------------------------------------------

    def fit(
        self,
        features: np.ndarray,
        targets: np.ndarray,
        sample_weight: Optional[np.ndarray] = None,
    ) -> "DecisionTreeRegressor":
        X = as_2d_array(features)
        y = as_1d_array(targets)
        if len(X) != len(y):
            raise ValueError("features and targets must have the same number of rows")
        if len(X) == 0:
            raise ValueError("cannot fit a tree on an empty dataset")
        weights = (
            np.ones(len(y)) if sample_weight is None else as_1d_array(sample_weight)
        )
        self._rng_ = np.random.default_rng(self.seed)
        self.n_features_ = X.shape[1]
        self.root_ = self._build(X, y, weights, depth=0)
        return self

    def predict(self, features: np.ndarray) -> np.ndarray:
        self._check_fitted("root_")
        X = as_2d_array(features)
        out = np.empty(len(X))
        for i, row in enumerate(X):
            out[i] = self._predict_row(row)
        return out

    def depth(self) -> int:
        """Depth of the fitted tree (a single leaf has depth 0)."""
        self._check_fitted("root_")

        def walk(node: _Node) -> int:
            if node.is_leaf:
                return 0
            return 1 + max(walk(node.left), walk(node.right))

        return walk(self.root_)

    def n_leaves(self) -> int:
        """Number of leaves of the fitted tree."""
        self._check_fitted("root_")

        def walk(node: _Node) -> int:
            if node.is_leaf:
                return 1
            return walk(node.left) + walk(node.right)

        return walk(self.root_)

    # -- internals --------------------------------------------------------------

    def _predict_row(self, row: np.ndarray) -> float:
        node = self.root_
        while not node.is_leaf:
            node = node.left if row[node.feature] <= node.threshold else node.right
        return node.value

    def _leaf_value(self, y: np.ndarray, weights: np.ndarray) -> float:
        total = weights.sum()
        if total <= 0:
            return float(y.mean()) if len(y) else 0.0
        return float(np.dot(y, weights) / total)

    def _build(self, X: np.ndarray, y: np.ndarray, weights: np.ndarray, depth: int) -> _Node:
        value = self._leaf_value(y, weights)
        if (
            depth >= self.max_depth
            or len(y) < self.min_samples_split
            or np.all(y == y[0])
        ):
            return _Node(value=value)

        split = self._best_split(X, y, weights)
        if split is None:
            return _Node(value=value)
        feature, threshold = split
        mask = X[:, feature] <= threshold
        left = self._build(X[mask], y[mask], weights[mask], depth + 1)
        right = self._build(X[~mask], y[~mask], weights[~mask], depth + 1)
        return _Node(value=value, feature=feature, threshold=threshold, left=left, right=right)

    def _candidate_features(self) -> np.ndarray:
        if self.max_features is None:
            return np.arange(self.n_features_)
        count = max(1, int(round(self.max_features * self.n_features_)))
        return self._rng_.choice(self.n_features_, size=count, replace=False)

    def _best_split(
        self, X: np.ndarray, y: np.ndarray, weights: np.ndarray
    ) -> Optional[Tuple[int, float]]:
        """Return (feature, threshold) minimizing weighted squared error."""
        best_gain = self.min_impurity_decrease
        best: Optional[Tuple[int, float]] = None
        total_weight = weights.sum()
        total_sum = np.dot(y, weights)
        parent_score = total_sum * total_sum / total_weight if total_weight > 0 else 0.0

        for feature in self._candidate_features():
            column = X[:, feature]
            order = np.argsort(column, kind="stable")
            sorted_x = column[order]
            sorted_y = y[order]
            sorted_w = weights[order]

            cum_weight = np.cumsum(sorted_w)
            cum_sum = np.cumsum(sorted_y * sorted_w)

            # Candidate split positions: between distinct consecutive values.
            distinct = np.nonzero(np.diff(sorted_x) > 0)[0]
            if len(distinct) == 0:
                continue
            left_weight = cum_weight[distinct]
            left_sum = cum_sum[distinct]
            right_weight = total_weight - left_weight
            right_sum = total_sum - left_sum

            counts_left = distinct + 1
            counts_right = len(y) - counts_left
            valid = (counts_left >= self.min_samples_leaf) & (
                counts_right >= self.min_samples_leaf
            )
            if not np.any(valid):
                continue

            with np.errstate(divide="ignore", invalid="ignore"):
                score = np.where(
                    valid,
                    left_sum**2 / np.maximum(left_weight, 1e-12)
                    + right_sum**2 / np.maximum(right_weight, 1e-12),
                    -np.inf,
                )
            gain = score - parent_score
            index = int(np.argmax(gain))
            if gain[index] > best_gain:
                best_gain = float(gain[index])
                position = distinct[index]
                threshold = 0.5 * (sorted_x[position] + sorted_x[position + 1])
                best = (int(feature), float(threshold))
        return best


class NewtonTreeRegressor(DecisionTreeRegressor):
    """Tree fitted on gradients/hessians with Newton-step leaf values.

    Used by :class:`repro.ml.gbm.GradientBoostingRegressor` in XGBoost mode:
    splits maximize the standard second-order gain
    ``G_l^2/(H_l + lambda) + G_r^2/(H_r + lambda) - G^2/(H + lambda)`` and the
    leaf value is ``-G/(H + lambda)``.
    """

    def __init__(
        self,
        max_depth: int = 6,
        min_samples_split: int = 8,
        min_samples_leaf: int = 3,
        max_features: Optional[float] = None,
        reg_lambda: float = 1.0,
        min_gain: float = 1e-9,
        seed: int = 0,
    ):
        super().__init__(
            max_depth=max_depth,
            min_samples_split=min_samples_split,
            min_samples_leaf=min_samples_leaf,
            max_features=max_features,
            min_impurity_decrease=min_gain,
            seed=seed,
        )
        self.reg_lambda = reg_lambda

    def fit_gradients(
        self, features: np.ndarray, gradients: np.ndarray, hessians: np.ndarray
    ) -> "NewtonTreeRegressor":
        """Fit the tree from per-sample gradients and hessians."""
        X = as_2d_array(features)
        grad = as_1d_array(gradients)
        hess = as_1d_array(hessians)
        if not (len(X) == len(grad) == len(hess)):
            raise ValueError("features, gradients and hessians must align")
        self._rng_ = np.random.default_rng(self.seed)
        self.n_features_ = X.shape[1]
        self.root_ = self._build_newton(X, grad, hess, depth=0)
        return self

    def fit(self, features, targets, sample_weight=None):  # type: ignore[override]
        """Plain regression fit: equivalent to one Newton step on squared loss."""
        y = as_1d_array(targets)
        gradients = -y
        hessians = np.ones_like(y)
        return self.fit_gradients(features, gradients, hessians)

    # -- internals --------------------------------------------------------------

    def _newton_value(self, grad: np.ndarray, hess: np.ndarray) -> float:
        return float(-grad.sum() / (hess.sum() + self.reg_lambda))

    def _build_newton(
        self, X: np.ndarray, grad: np.ndarray, hess: np.ndarray, depth: int
    ) -> _Node:
        value = self._newton_value(grad, hess)
        if depth >= self.max_depth or len(grad) < self.min_samples_split:
            return _Node(value=value)
        split = self._best_newton_split(X, grad, hess)
        if split is None:
            return _Node(value=value)
        feature, threshold = split
        mask = X[:, feature] <= threshold
        left = self._build_newton(X[mask], grad[mask], hess[mask], depth + 1)
        right = self._build_newton(X[~mask], grad[~mask], hess[~mask], depth + 1)
        return _Node(value=value, feature=feature, threshold=threshold, left=left, right=right)

    def _best_newton_split(
        self, X: np.ndarray, grad: np.ndarray, hess: np.ndarray
    ) -> Optional[Tuple[int, float]]:
        lam = self.reg_lambda
        total_g = grad.sum()
        total_h = hess.sum()
        parent_score = total_g * total_g / (total_h + lam)
        best_gain = self.min_impurity_decrease
        best: Optional[Tuple[int, float]] = None

        for feature in self._candidate_features():
            column = X[:, feature]
            order = np.argsort(column, kind="stable")
            sorted_x = column[order]
            cum_g = np.cumsum(grad[order])
            cum_h = np.cumsum(hess[order])

            distinct = np.nonzero(np.diff(sorted_x) > 0)[0]
            if len(distinct) == 0:
                continue
            left_g = cum_g[distinct]
            left_h = cum_h[distinct]
            right_g = total_g - left_g
            right_h = total_h - left_h

            counts_left = distinct + 1
            counts_right = len(grad) - counts_left
            valid = (counts_left >= self.min_samples_leaf) & (
                counts_right >= self.min_samples_leaf
            )
            if not np.any(valid):
                continue

            score = np.where(
                valid,
                left_g**2 / (left_h + lam) + right_g**2 / (right_h + lam),
                -np.inf,
            )
            gain = score - parent_score
            index = int(np.argmax(gain))
            if gain[index] > best_gain:
                best_gain = float(gain[index])
                position = distinct[index]
                threshold = 0.5 * (sorted_x[position] + sorted_x[position + 1])
                best = (int(feature), float(threshold))
        return best
