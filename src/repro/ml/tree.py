"""Regression trees (CART) used standalone and inside gradient boosting.

Two splitters are available, selectable with ``splitter=``:

* ``"hist"`` (default) — LightGBM-style histogram split finding: every
  feature column is bucketed once per ``fit`` into at most 256 bins
  (``REPRO_GBM_BINS`` overrides the budget), per-bin statistics are
  accumulated with ``np.bincount`` and child histograms are derived from the
  parent with the histogram-subtraction trick, so each node costs one pass
  over its rows instead of one argsort per feature.
* ``"exact"`` — the original exact variance-reduction splitter over sorted
  feature columns, kept as the reference for equivalence testing.

When a column has at most ``max_bins`` distinct values the histogram cut
points coincide with the exact splitter's candidate thresholds, so both
splitters see identical split gains.

Fitted trees are additionally *flattened* into parallel numpy arrays
(feature / threshold / left / right / value) and predicted level-by-level
over whole matrices (:class:`FlatTree`), replacing per-row Python recursion.
Leaf values can be plain means (standalone use) or Newton steps from
per-sample gradients/hessians (XGBoost-style boosting).
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.faults import fault_active
from repro.ml.base import Estimator, as_1d_array, as_2d_array

#: Environment variable overriding the histogram bin budget per feature.
BINS_ENV_VAR = "REPRO_GBM_BINS"

#: Hard ceiling on the bin budget — bin codes must fit in uint8.
MAX_BINS = 256

#: The two split-finding strategies.
SPLITTERS = ("hist", "exact")


def resolve_max_bins(max_bins: Optional[int] = None) -> int:
    """Effective bin budget: explicit argument, else ``REPRO_GBM_BINS``, else 256."""
    if max_bins is None:
        try:
            max_bins = int(os.environ.get(BINS_ENV_VAR, str(MAX_BINS)))
        except ValueError:
            max_bins = MAX_BINS
    return min(max(int(max_bins), 2), MAX_BINS)


# ---------------------------------------------------------------------------
# Feature binning
# ---------------------------------------------------------------------------


@dataclass
class BinnedMatrix:
    """Per-fit uint8 bin codes of a feature matrix plus the cut points.

    ``codes[i, f]`` is the bin of row ``i`` in feature ``f``; ``cuts[f]`` holds
    the increasing split thresholds between consecutive bins, so splitting
    after bin ``b`` corresponds to the predicate ``x <= cuts[f][b]`` and a
    feature with ``k`` cut points has ``k + 1`` bins.
    """

    codes: np.ndarray  # (n_rows, n_features) uint8
    cuts: List[np.ndarray]  # per feature, len(cuts[f]) == n_bins_f - 1

    @property
    def n_rows(self) -> int:
        return self.codes.shape[0]

    @property
    def n_features(self) -> int:
        return self.codes.shape[1]

    @property
    def n_bins(self) -> int:
        """Bin-axis size of the histogram arrays (max bins over features)."""
        return max((len(c) + 1 for c in self.cuts), default=1)

    def flat_codes(self) -> np.ndarray:
        """Codes with per-feature bin offsets added (int64), memoized.

        Computed lazily once per matrix so boosting loops that share one
        ``BinnedMatrix`` across rounds do not redo the O(rows x features)
        widening per tree.
        """
        flat = self.__dict__.get("_flat_codes")
        if flat is None:
            offsets = np.arange(self.n_features, dtype=np.int64) * self.n_bins
            flat = self.codes.astype(np.int64) + offsets
            self.__dict__["_flat_codes"] = flat
        return flat

    def cut_valid(self) -> np.ndarray:
        """Boolean (features, bins) mask of existing cut positions, memoized."""
        valid = self.__dict__.get("_cut_valid")
        if valid is None:
            lengths = np.array([len(cut) for cut in self.cuts])
            valid = np.arange(self.n_bins) < lengths[:, None]
            self.__dict__["_cut_valid"] = valid
        return valid

    def take(self, rows: np.ndarray) -> "BinnedMatrix":
        """Row-subset view sharing the cut points (for row-subsampled fits)."""
        subset = BinnedMatrix(codes=self.codes[rows], cuts=self.cuts)
        flat = self.__dict__.get("_flat_codes")
        if flat is not None:
            subset.__dict__["_flat_codes"] = flat[rows]
        valid = self.__dict__.get("_cut_valid")
        if valid is not None:
            subset.__dict__["_cut_valid"] = valid
        return subset


def bin_feature_matrix(features: np.ndarray, max_bins: Optional[int] = None) -> BinnedMatrix:
    """Bucket every feature column into at most ``max_bins`` ordered bins.

    Columns with few distinct values get one bin per value with cut points at
    the midpoints between consecutive values — exactly the exact splitter's
    candidate thresholds.  Wider columns are quantized over their distinct
    values, evenly in distinct-value space.
    """
    X = as_2d_array(features)
    budget = resolve_max_bins(max_bins)
    codes = np.empty(X.shape, dtype=np.uint8)
    cuts: List[np.ndarray] = []
    for feature in range(X.shape[1]):
        column = X[:, feature]
        uniques = np.unique(column)
        if len(uniques) <= budget:
            cut = 0.5 * (uniques[:-1] + uniques[1:])
        else:
            boundaries = np.linspace(0, len(uniques) - 1, budget + 1).round().astype(int)
            boundaries = np.unique(boundaries)[1:-1]
            cut = 0.5 * (uniques[boundaries - 1] + uniques[boundaries])
        # Adjacent floats can collapse a midpoint onto a value; deduplicate so
        # the cut points stay strictly increasing (empty bins are harmless).
        cut = np.unique(cut)
        codes[:, feature] = np.searchsorted(cut, column, side="left")
        cuts.append(cut)
    return BinnedMatrix(codes=codes, cuts=cuts)


# ---------------------------------------------------------------------------
# Flattened trees
# ---------------------------------------------------------------------------


@dataclass
class _Node:
    """One node of a fitted tree (leaf when ``feature`` is None)."""

    value: float
    feature: Optional[int] = None
    threshold: float = 0.0
    left: Optional["_Node"] = None
    right: Optional["_Node"] = None

    @property
    def is_leaf(self) -> bool:
        return self.feature is None


@dataclass
class FlatTree:
    """A fitted tree flattened into parallel arrays for vectorized predict.

    ``feature[i] == -1`` marks node ``i`` as a leaf; interior nodes route rows
    with ``x[feature] <= threshold`` to ``left`` and the rest to ``right``.
    """

    feature: np.ndarray  # (n_nodes,) int32, -1 at leaves
    threshold: np.ndarray  # (n_nodes,) float64
    left: np.ndarray  # (n_nodes,) int32
    right: np.ndarray  # (n_nodes,) int32
    value: np.ndarray  # (n_nodes,) float64

    @property
    def n_nodes(self) -> int:
        return len(self.value)

    @classmethod
    def from_node(cls, root: _Node) -> "FlatTree":
        order: List[_Node] = []
        index_of = {}
        stack = [root]
        while stack:
            node = stack.pop()
            index_of[id(node)] = len(order)
            order.append(node)
            if not node.is_leaf:
                stack.append(node.right)
                stack.append(node.left)
        n = len(order)
        feature = np.full(n, -1, dtype=np.int32)
        threshold = np.zeros(n)
        left = np.full(n, -1, dtype=np.int32)
        right = np.full(n, -1, dtype=np.int32)
        value = np.empty(n)
        for index, node in enumerate(order):
            value[index] = node.value
            if not node.is_leaf:
                feature[index] = node.feature
                threshold[index] = node.threshold
                left[index] = index_of[id(node.left)]
                right[index] = index_of[id(node.right)]
        return cls(feature=feature, threshold=threshold, left=left, right=right, value=value)

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Route all rows level-by-level; one numpy pass per tree level."""
        X = as_2d_array(features)
        node = np.zeros(len(X), dtype=np.int32)
        while True:
            split_feature = self.feature[node]
            active = np.nonzero(split_feature >= 0)[0]
            if active.size == 0:
                break
            current = node[active]
            go_left = X[active, split_feature[active]] <= self.threshold[current]
            node[active] = np.where(go_left, self.left[current], self.right[current])
        return self.value[node]

    def to_node(self) -> _Node:
        """Rebuild the linked-node form of the tree (index 0 is the root).

        Inverse of :meth:`from_node` up to node identity — routing and leaf
        values are preserved exactly, so ``predict_recursive`` over the
        rebuilt nodes matches the flattened ``predict`` bit for bit.  Used
        when a tree is restored from serialized state, where only the flat
        arrays are stored.
        """

        def build(index: int) -> _Node:
            if self.feature[index] < 0:
                return _Node(value=float(self.value[index]))
            return _Node(
                value=float(self.value[index]),
                feature=int(self.feature[index]),
                threshold=float(self.threshold[index]),
                left=build(int(self.left[index])),
                right=build(int(self.right[index])),
            )

        return build(0)

    def to_state(self) -> dict:
        """The five parallel arrays as a plain dict (copies, not views)."""
        return {
            "feature": self.feature.copy(),
            "threshold": self.threshold.copy(),
            "left": self.left.copy(),
            "right": self.right.copy(),
            "value": self.value.copy(),
        }

    @classmethod
    def from_state(cls, state: dict) -> "FlatTree":
        """Rebuild a :class:`FlatTree` from :meth:`to_state` output."""
        return cls(
            feature=np.asarray(state["feature"], dtype=np.int32),
            threshold=np.asarray(state["threshold"], dtype=float),
            left=np.asarray(state["left"], dtype=np.int32),
            right=np.asarray(state["right"], dtype=np.int32),
            value=np.asarray(state["value"], dtype=float),
        )


# ---------------------------------------------------------------------------
# Histogram split finding
# ---------------------------------------------------------------------------


class _HistogramContext:
    """Per-fit state of the histogram splitter.

    The split gain for both tree flavours has the common form
    ``num^2 / (den + lam)``: the variance splitter uses ``num = w*y`` and
    ``den = w`` (with a denominator floor), the Newton splitter ``num = g``
    and ``den = h`` with the L2 regularizer as ``lam``.
    """

    def __init__(
        self,
        binned: BinnedMatrix,
        num: np.ndarray,
        den: np.ndarray,
        lam: float,
        floor: float,
    ):
        self.binned = binned
        self.num = num
        self.den = den
        self.lam = lam
        self.floor = floor
        self._bins = binned.n_bins
        self._size = binned.n_features * self._bins
        # Both memoized on the binned matrix, so boosting rounds sharing one
        # BinnedMatrix pay for them once per fit, not once per tree.
        self._flat_codes = binned.flat_codes()
        self.cut_valid = binned.cut_valid()

    def split_score(self, num, den):
        denominator = den + self.lam
        if self.floor > 0.0:
            denominator = np.maximum(denominator, self.floor)
        return num * num / denominator

    def histograms(self, rows: np.ndarray) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Per-bin (num, den, count) sums for the given rows, one bincount each."""
        flat = self._flat_codes[rows].ravel()
        reps = self.binned.n_features
        shape = (reps, self._bins)
        count = np.bincount(flat, minlength=self._size).reshape(shape)
        num = np.bincount(
            flat, weights=np.repeat(self.num[rows], reps), minlength=self._size
        ).reshape(shape)
        den = np.bincount(
            flat, weights=np.repeat(self.den[rows], reps), minlength=self._size
        ).reshape(shape)
        return num, den, count

    def partition(self, rows: np.ndarray, hist, feature: int, cut_index: int):
        """Split rows at a cut; the bigger child's histogram comes by subtraction."""
        mask = self.binned.codes[rows, feature] <= cut_index
        left_rows = rows[mask]
        right_rows = rows[~mask]
        if len(left_rows) <= len(right_rows):
            left_hist = self.histograms(left_rows)
            right_hist = tuple(parent - child for parent, child in zip(hist, left_hist))
        else:
            right_hist = self.histograms(right_rows)
            left_hist = tuple(parent - child for parent, child in zip(hist, right_hist))
        return left_rows, right_rows, left_hist, right_hist


class DecisionTreeRegressor(Estimator):
    """CART regression tree with histogram (default) or exact splits.

    A histogram fit additionally exposes ``training_predictions_`` — the leaf
    value of every training row, assigned during growth — so boosting loops
    can skip re-routing the training matrix after each round (bit-identical
    to ``predict`` on the training data by construction).
    """

    def __init__(
        self,
        max_depth: int = 8,
        min_samples_split: int = 8,
        min_samples_leaf: int = 3,
        max_features: Optional[float] = None,
        min_impurity_decrease: float = 1e-9,
        splitter: str = "hist",
        max_bins: Optional[int] = None,
        seed: int = 0,
    ):
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.min_impurity_decrease = min_impurity_decrease
        self.splitter = splitter
        self.max_bins = max_bins
        self.seed = seed

    # -- public ---------------------------------------------------------------

    def fit(
        self,
        features: np.ndarray,
        targets: np.ndarray,
        sample_weight: Optional[np.ndarray] = None,
        binned: Optional[BinnedMatrix] = None,
    ) -> "DecisionTreeRegressor":
        X = as_2d_array(features)
        y = as_1d_array(targets)
        if len(X) != len(y):
            raise ValueError("features and targets must have the same number of rows")
        if len(X) == 0:
            raise ValueError("cannot fit a tree on an empty dataset")
        weights = (
            np.ones(len(y)) if sample_weight is None else as_1d_array(sample_weight)
        )
        self._rng_ = np.random.default_rng(self.seed)
        self.n_features_ = X.shape[1]
        if self.splitter == "hist":
            binned = self._check_binned(X, binned)
            context = _HistogramContext(binned, num=weights * y, den=weights, lam=0.0, floor=1e-12)
            rows = np.arange(len(y))
            self._training_pred_ = np.empty(len(y))
            self.root_ = self._grow_hist(context, y, weights, rows, context.histograms(rows), 0)
            self.training_predictions_ = self._training_pred_
        elif self.splitter == "exact":
            self.root_ = self._build(X, y, weights, depth=0)
        else:
            raise ValueError(f"splitter must be one of {SPLITTERS}, got {self.splitter!r}")
        self.flat_ = FlatTree.from_node(self.root_)
        return self

    def predict(self, features: np.ndarray) -> np.ndarray:
        self._check_fitted("flat_")
        return self.flat_.predict(features)

    def predict_recursive(self, features: np.ndarray) -> np.ndarray:
        """Reference per-row recursive predict (equivalence testing only)."""
        self._check_fitted("root_")
        X = as_2d_array(features)
        out = np.empty(len(X))
        for i, row in enumerate(X):
            out[i] = self._predict_row(row)
        return out

    def depth(self) -> int:
        """Depth of the fitted tree (a single leaf has depth 0)."""
        self._check_fitted("root_")

        def walk(node: _Node) -> int:
            if node.is_leaf:
                return 0
            return 1 + max(walk(node.left), walk(node.right))

        return walk(self.root_)

    def n_leaves(self) -> int:
        """Number of leaves of the fitted tree."""
        self._check_fitted("root_")

        def walk(node: _Node) -> int:
            if node.is_leaf:
                return 1
            return walk(node.left) + walk(node.right)

        return walk(self.root_)

    # -- serialization ----------------------------------------------------------

    def _fitted_state(self) -> dict:
        """Flat arrays + feature count; ``root_`` is rebuilt on restore."""
        self._check_fitted("flat_")
        return {"flat": self.flat_.to_state(), "n_features": int(self.n_features_)}

    def _restore_fitted(self, fitted) -> None:
        self.flat_ = FlatTree.from_state(fitted["flat"])
        self.root_ = self.flat_.to_node()
        self.n_features_ = int(fitted["n_features"])

    # -- internals --------------------------------------------------------------

    def _check_binned(self, X: np.ndarray, binned: Optional[BinnedMatrix]) -> BinnedMatrix:
        if binned is None:
            return bin_feature_matrix(X, self.max_bins)
        if binned.codes.shape != X.shape:
            raise ValueError("pre-binned matrix does not match the feature matrix shape")
        return binned

    def _predict_row(self, row: np.ndarray) -> float:
        node = self.root_
        while not node.is_leaf:
            node = node.left if row[node.feature] <= node.threshold else node.right
        return node.value

    def _leaf_value(self, y: np.ndarray, weights: np.ndarray) -> float:
        total = weights.sum()
        if total <= 0:
            return float(y.mean()) if len(y) else 0.0
        return float(np.dot(y, weights) / total)

    def _candidate_features(self) -> np.ndarray:
        if self.max_features is None:
            return np.arange(self.n_features_)
        count = max(1, int(round(self.max_features * self.n_features_)))
        return self._rng_.choice(self.n_features_, size=count, replace=False)

    # -- histogram splitter ------------------------------------------------------

    def _grow_hist(
        self,
        context: _HistogramContext,
        y: np.ndarray,
        weights: np.ndarray,
        rows: np.ndarray,
        hist,
        depth: int,
    ) -> _Node:
        node_y = y[rows]
        value = self._leaf_value(node_y, weights[rows])
        if (
            depth >= self.max_depth
            or len(rows) < self.min_samples_split
            or np.all(node_y == node_y[0])
        ):
            self._training_pred_[rows] = value
            return _Node(value=value)
        split = self._best_hist_split(context, hist)
        if split is None:
            self._training_pred_[rows] = value
            return _Node(value=value)
        feature, cut_index, threshold = split
        left_rows, right_rows, left_hist, right_hist = context.partition(
            rows, hist, feature, cut_index
        )
        left = self._grow_hist(context, y, weights, left_rows, left_hist, depth + 1)
        right = self._grow_hist(context, y, weights, right_rows, right_hist, depth + 1)
        return _Node(value=value, feature=feature, threshold=threshold, left=left, right=right)

    def _best_hist_split(
        self, context: _HistogramContext, hist
    ) -> Optional[Tuple[int, int, float]]:
        """Best (feature, cut index, threshold) from the node's histograms.

        All candidate features are scored in one vectorized pass over the
        (features, bins) histogram arrays; tie-breaking matches the exact
        splitter (first feature in candidate order, first cut position).
        """
        num_h, den_h, cnt_h = hist
        candidates = self._candidate_features()
        min_leaf = max(self.min_samples_leaf, 1)

        left_num = np.cumsum(num_h[candidates], axis=1)
        left_den = np.cumsum(den_h[candidates], axis=1)
        left_cnt = np.cumsum(cnt_h[candidates], axis=1)
        total_num = left_num[:, -1]
        total_den = left_den[:, -1]
        total_cnt = left_cnt[:, -1]

        valid = (
            context.cut_valid[candidates]
            & (left_cnt >= min_leaf)
            & (total_cnt[:, None] - left_cnt >= min_leaf)
        )
        if not valid.any():
            return None

        with np.errstate(divide="ignore", invalid="ignore"):
            score = context.split_score(left_num, left_den) + context.split_score(
                total_num[:, None] - left_num, total_den[:, None] - left_den
            )
            gain = np.where(
                valid, score - context.split_score(total_num, total_den)[:, None], -np.inf
            )

        best_cut = np.argmax(gain, axis=1)
        per_feature = np.take_along_axis(gain, best_cut[:, None], axis=1)[:, 0]
        position = int(np.argmax(per_feature))
        if not per_feature[position] > self.min_impurity_decrease:
            return None
        feature = int(candidates[position])
        cut_index = int(best_cut[position])
        if fault_active("gbm.hist_threshold") and cut_index + 1 < len(
            context.binned.cuts[feature]
        ):
            # Debug fault point: shifting the chosen cut one bin over
            # re-partitions the node's rows, so the hist splitter diverges
            # from the exact splitter under the fuzz campaign's
            # hist-vs-exact oracle (see repro.faults).
            cut_index += 1
        return feature, cut_index, float(context.binned.cuts[feature][cut_index])

    # -- exact splitter ----------------------------------------------------------

    def _build(self, X: np.ndarray, y: np.ndarray, weights: np.ndarray, depth: int) -> _Node:
        value = self._leaf_value(y, weights)
        if (
            depth >= self.max_depth
            or len(y) < self.min_samples_split
            or np.all(y == y[0])
        ):
            return _Node(value=value)

        split = self._best_split(X, y, weights)
        if split is None:
            return _Node(value=value)
        feature, threshold = split
        mask = X[:, feature] <= threshold
        left = self._build(X[mask], y[mask], weights[mask], depth + 1)
        right = self._build(X[~mask], y[~mask], weights[~mask], depth + 1)
        return _Node(value=value, feature=feature, threshold=threshold, left=left, right=right)

    def _best_split(
        self, X: np.ndarray, y: np.ndarray, weights: np.ndarray
    ) -> Optional[Tuple[int, float]]:
        """Return (feature, threshold) minimizing weighted squared error."""
        best_gain = self.min_impurity_decrease
        best: Optional[Tuple[int, float]] = None
        total_weight = weights.sum()
        total_sum = np.dot(y, weights)
        parent_score = total_sum * total_sum / total_weight if total_weight > 0 else 0.0

        for feature in self._candidate_features():
            column = X[:, feature]
            order = np.argsort(column, kind="stable")
            sorted_x = column[order]
            sorted_y = y[order]
            sorted_w = weights[order]

            cum_weight = np.cumsum(sorted_w)
            cum_sum = np.cumsum(sorted_y * sorted_w)

            # Candidate split positions: between distinct consecutive values.
            distinct = np.nonzero(np.diff(sorted_x) > 0)[0]
            if len(distinct) == 0:
                continue
            left_weight = cum_weight[distinct]
            left_sum = cum_sum[distinct]
            right_weight = total_weight - left_weight
            right_sum = total_sum - left_sum

            counts_left = distinct + 1
            counts_right = len(y) - counts_left
            valid = (counts_left >= self.min_samples_leaf) & (
                counts_right >= self.min_samples_leaf
            )
            if not np.any(valid):
                continue

            with np.errstate(divide="ignore", invalid="ignore"):
                score = np.where(
                    valid,
                    left_sum**2 / np.maximum(left_weight, 1e-12)
                    + right_sum**2 / np.maximum(right_weight, 1e-12),
                    -np.inf,
                )
            gain = score - parent_score
            index = int(np.argmax(gain))
            if gain[index] > best_gain:
                best_gain = float(gain[index])
                position = distinct[index]
                threshold = 0.5 * (sorted_x[position] + sorted_x[position + 1])
                best = (int(feature), float(threshold))
        return best


class NewtonTreeRegressor(DecisionTreeRegressor):
    """Tree fitted on gradients/hessians with Newton-step leaf values.

    Used by :class:`repro.ml.gbm.GradientBoostingRegressor` in XGBoost mode:
    splits maximize the standard second-order gain
    ``G_l^2/(H_l + lambda) + G_r^2/(H_r + lambda) - G^2/(H + lambda)`` and the
    leaf value is ``-G/(H + lambda)``.
    """

    def __init__(
        self,
        max_depth: int = 6,
        min_samples_split: int = 8,
        min_samples_leaf: int = 3,
        max_features: Optional[float] = None,
        reg_lambda: float = 1.0,
        min_gain: float = 1e-9,
        splitter: str = "hist",
        max_bins: Optional[int] = None,
        seed: int = 0,
    ):
        super().__init__(
            max_depth=max_depth,
            min_samples_split=min_samples_split,
            min_samples_leaf=min_samples_leaf,
            max_features=max_features,
            min_impurity_decrease=min_gain,
            splitter=splitter,
            max_bins=max_bins,
            seed=seed,
        )
        self.reg_lambda = reg_lambda

    def _state_params(self) -> dict:
        # The constructor spells the gain threshold ``min_gain`` while the
        # attribute keeps the base class name, so map it back for from_state.
        params = super()._state_params()
        params["min_gain"] = params.pop("min_impurity_decrease")
        return params

    def fit_gradients(
        self,
        features: np.ndarray,
        gradients: np.ndarray,
        hessians: np.ndarray,
        binned: Optional[BinnedMatrix] = None,
    ) -> "NewtonTreeRegressor":
        """Fit the tree from per-sample gradients and hessians."""
        X = as_2d_array(features)
        grad = as_1d_array(gradients)
        hess = as_1d_array(hessians)
        if not (len(X) == len(grad) == len(hess)):
            raise ValueError("features, gradients and hessians must align")
        self._rng_ = np.random.default_rng(self.seed)
        self.n_features_ = X.shape[1]
        if self.splitter == "hist":
            binned = self._check_binned(X, binned)
            context = _HistogramContext(
                binned, num=grad, den=hess, lam=self.reg_lambda, floor=0.0
            )
            rows = np.arange(len(grad))
            self._training_pred_ = np.empty(len(grad))
            self.root_ = self._grow_hist_newton(
                context, grad, hess, rows, context.histograms(rows), 0
            )
            self.training_predictions_ = self._training_pred_
        elif self.splitter == "exact":
            self.root_ = self._build_newton(X, grad, hess, depth=0)
        else:
            raise ValueError(f"splitter must be one of {SPLITTERS}, got {self.splitter!r}")
        self.flat_ = FlatTree.from_node(self.root_)
        return self

    def fit(self, features, targets, sample_weight=None, binned=None):  # type: ignore[override]
        """Plain regression fit: equivalent to one Newton step on squared loss."""
        y = as_1d_array(targets)
        gradients = -y
        hessians = np.ones_like(y)
        return self.fit_gradients(features, gradients, hessians, binned=binned)

    # -- internals --------------------------------------------------------------

    def _newton_value(self, grad: np.ndarray, hess: np.ndarray) -> float:
        return float(-grad.sum() / (hess.sum() + self.reg_lambda))

    def _grow_hist_newton(
        self,
        context: _HistogramContext,
        grad: np.ndarray,
        hess: np.ndarray,
        rows: np.ndarray,
        hist,
        depth: int,
    ) -> _Node:
        value = self._newton_value(grad[rows], hess[rows])
        if depth >= self.max_depth or len(rows) < self.min_samples_split:
            self._training_pred_[rows] = value
            return _Node(value=value)
        split = self._best_hist_split(context, hist)
        if split is None:
            self._training_pred_[rows] = value
            return _Node(value=value)
        feature, cut_index, threshold = split
        left_rows, right_rows, left_hist, right_hist = context.partition(
            rows, hist, feature, cut_index
        )
        left = self._grow_hist_newton(context, grad, hess, left_rows, left_hist, depth + 1)
        right = self._grow_hist_newton(context, grad, hess, right_rows, right_hist, depth + 1)
        return _Node(value=value, feature=feature, threshold=threshold, left=left, right=right)

    def _build_newton(
        self, X: np.ndarray, grad: np.ndarray, hess: np.ndarray, depth: int
    ) -> _Node:
        value = self._newton_value(grad, hess)
        if depth >= self.max_depth or len(grad) < self.min_samples_split:
            return _Node(value=value)
        split = self._best_newton_split(X, grad, hess)
        if split is None:
            return _Node(value=value)
        feature, threshold = split
        mask = X[:, feature] <= threshold
        left = self._build_newton(X[mask], grad[mask], hess[mask], depth + 1)
        right = self._build_newton(X[~mask], grad[~mask], hess[~mask], depth + 1)
        return _Node(value=value, feature=feature, threshold=threshold, left=left, right=right)

    def _best_newton_split(
        self, X: np.ndarray, grad: np.ndarray, hess: np.ndarray
    ) -> Optional[Tuple[int, float]]:
        lam = self.reg_lambda
        total_g = grad.sum()
        total_h = hess.sum()
        parent_score = total_g * total_g / (total_h + lam)
        best_gain = self.min_impurity_decrease
        best: Optional[Tuple[int, float]] = None

        for feature in self._candidate_features():
            column = X[:, feature]
            order = np.argsort(column, kind="stable")
            sorted_x = column[order]
            cum_g = np.cumsum(grad[order])
            cum_h = np.cumsum(hess[order])

            distinct = np.nonzero(np.diff(sorted_x) > 0)[0]
            if len(distinct) == 0:
                continue
            left_g = cum_g[distinct]
            left_h = cum_h[distinct]
            right_g = total_g - left_g
            right_h = total_h - left_h

            counts_left = distinct + 1
            counts_right = len(grad) - counts_left
            valid = (counts_left >= self.min_samples_leaf) & (
                counts_right >= self.min_samples_leaf
            )
            if not np.any(valid):
                continue

            score = np.where(
                valid,
                left_g**2 / (left_h + lam) + right_g**2 / (right_h + lam),
                -np.inf,
            )
            gain = score - parent_score
            index = int(np.argmax(gain))
            if gain[index] > best_gain:
                best_gain = float(gain[index])
                position = distinct[index]
                threshold = 0.5 * (sorted_x[position] + sorted_x[position + 1])
                best = (int(feature), float(threshold))
        return best
