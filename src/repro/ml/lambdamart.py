"""LambdaMART: pairwise learning-to-rank with gradient boosted trees.

Used by RTL-Timer's signal-wise *ranking* model (Section 3.4.2): each design
is a query, its signal-wise endpoints are the documents, and the relevance
label is the criticality level (more critical endpoints get higher
relevance).  Training follows the standard LambdaMART recipe: per-pair
lambda gradients weighted by the NDCG change of swapping the pair, fitted by
Newton-step regression trees.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.ml.base import Estimator, as_1d_array, as_2d_array
from repro.ml.tree import NewtonTreeRegressor, bin_feature_matrix
from repro.runtime.report import stage as _stage


def dcg_at_k(relevance_in_rank_order: np.ndarray, k: Optional[int] = None) -> float:
    """Discounted cumulative gain of a relevance list already in rank order."""
    relevance = np.asarray(relevance_in_rank_order, dtype=float)
    if k is not None:
        relevance = relevance[:k]
    if relevance.size == 0:
        return 0.0
    gains = 2.0**relevance - 1.0
    discounts = 1.0 / np.log2(np.arange(2, len(relevance) + 2))
    return float(np.dot(gains, discounts))


def ndcg(scores: np.ndarray, relevance: np.ndarray, k: Optional[int] = None) -> float:
    """Normalized DCG of ranking ``scores`` against ``relevance`` labels."""
    scores = as_1d_array(scores)
    relevance = as_1d_array(relevance)
    order = np.argsort(-scores, kind="stable")
    ideal = np.sort(relevance)[::-1]
    ideal_dcg = dcg_at_k(ideal, k)
    if ideal_dcg == 0.0:
        return 1.0
    return dcg_at_k(relevance[order], k) / ideal_dcg


class LambdaMARTRanker(Estimator):
    """Pairwise LambdaMART ranker (boosted Newton trees on lambda gradients)."""

    def __init__(
        self,
        n_estimators: int = 100,
        learning_rate: float = 0.1,
        max_depth: int = 4,
        min_samples_leaf: int = 2,
        reg_lambda: float = 1.0,
        max_pairs_per_query: int = 5000,
        splitter: str = "hist",
        max_bins: Optional[int] = None,
        seed: int = 0,
    ):
        self.n_estimators = n_estimators
        self.learning_rate = learning_rate
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.reg_lambda = reg_lambda
        self.max_pairs_per_query = max_pairs_per_query
        self.splitter = splitter
        self.max_bins = max_bins
        self.seed = seed

    # -- training ---------------------------------------------------------------

    def fit(
        self,
        features: np.ndarray,
        relevance: np.ndarray,
        query_groups: Optional[Sequence] = None,
    ) -> "LambdaMARTRanker":
        """Fit the ranker.

        ``relevance`` holds integer relevance labels (larger = should rank
        higher); ``query_groups`` assigns each row to a query (a design).  If
        omitted, all rows form one query.
        """
        X = as_2d_array(features)
        rel = as_1d_array(relevance)
        if query_groups is None:
            groups = np.zeros(len(rel), dtype=int)
        else:
            labels = np.asarray(query_groups)
            _, groups = np.unique(labels, return_inverse=True)
        if not (len(X) == len(rel) == len(groups)):
            raise ValueError("features, relevance and query_groups must align")

        rng = np.random.default_rng(self.seed)
        self._query_rows_ = [np.where(groups == q)[0] for q in range(groups.max() + 1)]
        scores = np.zeros(len(rel))
        self.trees_: List[NewtonTreeRegressor] = []
        self.train_ndcg_: List[float] = []

        # One binning pass shared by every boosting round (no row subsampling
        # here, so the codes can be reused verbatim).
        binned = bin_feature_matrix(X, self.max_bins) if self.splitter == "hist" else None

        with _stage(f"ml.fit_{self.splitter}"):
            for _ in range(self.n_estimators):
                grad, hess = self._lambda_gradients(scores, rel, rng)
                tree = NewtonTreeRegressor(
                    max_depth=self.max_depth,
                    min_samples_leaf=self.min_samples_leaf,
                    reg_lambda=self.reg_lambda,
                    splitter=self.splitter,
                    max_bins=self.max_bins,
                    seed=int(rng.integers(2**31)),
                )
                tree.fit_gradients(X, grad, hess, binned=binned)
                update = (
                    tree.training_predictions_ if binned is not None else tree.predict(X)
                )
                scores = scores + self.learning_rate * update
                self.trees_.append(tree)
                self.train_ndcg_.append(self._mean_ndcg(scores, rel))
        return self

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Ranking scores (higher = predicted more critical)."""
        self._check_fitted("trees_")
        X = as_2d_array(features)
        with _stage("ml.predict_flat"):
            scores = np.zeros(len(X))
            for tree in self.trees_:
                scores += self.learning_rate * tree.predict(X)
        return scores

    # -- serialization ------------------------------------------------------------

    def _fitted_state(self) -> dict:
        """Boosted trees + training NDCG curve; query rows are training-only."""
        self._check_fitted("trees_")
        return {
            "trees": [tree.to_state() for tree in self.trees_],
            "train_ndcg": [float(value) for value in self.train_ndcg_],
        }

    def _restore_fitted(self, fitted) -> None:
        self.trees_ = [NewtonTreeRegressor.from_state(state) for state in fitted["trees"]]
        self.train_ndcg_ = list(fitted.get("train_ndcg", []))

    def rank(self, features: np.ndarray) -> np.ndarray:
        """Rank positions (0 = most critical) for the given rows."""
        scores = self.predict(features)
        order = np.argsort(-scores, kind="stable")
        ranks = np.empty(len(scores), dtype=int)
        ranks[order] = np.arange(len(scores))
        return ranks

    # -- internals ---------------------------------------------------------------

    def _mean_ndcg(self, scores: np.ndarray, relevance: np.ndarray) -> float:
        values = [
            ndcg(scores[rows], relevance[rows])
            for rows in self._query_rows_
            if len(rows) > 1
        ]
        return float(np.mean(values)) if values else 1.0

    def _lambda_gradients(
        self, scores: np.ndarray, relevance: np.ndarray, rng: np.random.Generator
    ) -> Tuple[np.ndarray, np.ndarray]:
        grad = np.zeros_like(scores)
        hess = np.full_like(scores, 1e-3)

        for rows in self._query_rows_:
            if len(rows) < 2:
                continue
            query_scores = scores[rows]
            query_rel = relevance[rows]
            ideal_dcg = dcg_at_k(np.sort(query_rel)[::-1])
            if ideal_dcg == 0.0:
                continue
            order = np.argsort(-query_scores, kind="stable")
            positions = np.empty(len(rows), dtype=int)
            positions[order] = np.arange(len(rows))
            discounts = 1.0 / np.log2(positions + 2.0)
            gains = 2.0**query_rel - 1.0

            # All (better, worse) pairs at once; nonzero yields them in the
            # same row-major order the seed's nested loop produced, so the
            # subsampling RNG draws stay identical.
            better, worse = np.nonzero(query_rel[:, None] > query_rel[None, :])
            if len(better) == 0:
                continue
            if len(better) > self.max_pairs_per_query:
                chosen = rng.choice(len(better), size=self.max_pairs_per_query, replace=False)
                better, worse = better[chosen], worse[chosen]

            delta_ndcg = (
                np.abs(gains[better] - gains[worse])
                * np.abs(discounts[better] - discounts[worse])
                / ideal_dcg
            )
            score_diff = np.clip(query_scores[better] - query_scores[worse], -35.0, 35.0)
            rho = 1.0 / (1.0 + np.exp(score_diff))
            weight = np.maximum(delta_ndcg, 1e-6)
            push = rho * weight
            curvature = np.maximum(rho * (1.0 - rho) * weight, 1e-6)
            np.subtract.at(grad, rows[better], push)
            np.add.at(grad, rows[worse], push)
            np.add.at(hess, rows[better], curvature)
            np.add.at(hess, rows[worse], curvature)
        return grad, hess
