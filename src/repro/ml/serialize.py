"""Estimator-state dispatch shared by the model registry.

Every estimator and scaler in :mod:`repro.ml` snapshots itself into a plain
state dict (``{"estimator": <class name>, "params": ..., "fitted": ...}``,
see :meth:`repro.ml.base.Estimator.to_state`).  This module provides the
inverse direction without the caller having to know the concrete class:
:func:`estimator_from_state` looks the class up by the recorded name and
delegates to its ``from_state``.

The name->module table is explicit (not a global registry populated by
imports) so a state written by one process restores identically in a fresh
process regardless of what happens to have been imported.
"""

from __future__ import annotations

import importlib
from typing import Any, Mapping, Optional

#: Class name -> defining module for every serializable estimator/scaler.
ESTIMATOR_MODULES = {
    "DecisionTreeRegressor": "repro.ml.tree",
    "NewtonTreeRegressor": "repro.ml.tree",
    "GradientBoostingRegressor": "repro.ml.gbm",
    "LambdaMARTRanker": "repro.ml.lambdamart",
    "MLPRegressor": "repro.ml.mlp",
    "TransformerPathRegressor": "repro.ml.transformer",
    "GNNRegressor": "repro.ml.gnn",
    "StandardScaler": "repro.ml.preprocessing",
    "MinMaxScaler": "repro.ml.preprocessing",
    "TargetScaler": "repro.ml.preprocessing",
}


def estimator_to_state(model: Any) -> Optional[dict]:
    """Snapshot ``model`` (``None`` passes through for optional submodels)."""
    if model is None:
        return None
    return model.to_state()


def estimator_from_state(state: Optional[Mapping[str, Any]]) -> Any:
    """Rebuild the estimator a :func:`estimator_to_state` snapshot describes.

    Raises ``ValueError`` for states that do not name a known estimator, so
    a truncated or hand-edited bundle fails loudly instead of predicting
    garbage.
    """
    if state is None:
        return None
    name = state.get("estimator") if isinstance(state, Mapping) else None
    if name is None:
        raise ValueError("estimator state must be a mapping with an 'estimator' key")
    module_name = ESTIMATOR_MODULES.get(name)
    if module_name is None:
        raise ValueError(
            f"unknown estimator {name!r}; known: {sorted(ESTIMATOR_MODULES)}"
        )
    cls = getattr(importlib.import_module(module_name), name)
    return cls.from_state(state)
