"""Message-passing graph neural network (the paper's customized baseline).

The paper adapts a layout-stage GNN timing predictor as its baseline for
bit-wise endpoint arrival-time prediction.  This module implements an
equivalent model from scratch on numpy: a GraphSAGE-style network whose
layers concatenate each node's representation with the mean of its fan-in
neighbours' representations, followed by a linear head that predicts the
arrival time at endpoint nodes only.

Graphs are passed as :class:`GraphData` records (node features, directed
fanin edges, endpoint node indices, endpoint labels); multiple designs are
trained jointly by iterating over their graphs in each epoch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.ml.base import Estimator, as_1d_array, as_2d_array
from repro.ml.mlp import _AdamState


@dataclass
class GraphData:
    """One design's graph for GNN training/inference."""

    name: str
    node_features: np.ndarray  # (n_nodes, n_features)
    edge_src: np.ndarray  # fanin node ids
    edge_dst: np.ndarray  # consumer node ids
    endpoint_nodes: np.ndarray  # node ids whose arrival is supervised
    endpoint_targets: np.ndarray  # arrival-time labels, aligned with endpoint_nodes

    def __post_init__(self) -> None:
        self.node_features = as_2d_array(self.node_features)
        self.edge_src = np.asarray(self.edge_src, dtype=int).ravel()
        self.edge_dst = np.asarray(self.edge_dst, dtype=int).ravel()
        self.endpoint_nodes = np.asarray(self.endpoint_nodes, dtype=int).ravel()
        self.endpoint_targets = as_1d_array(self.endpoint_targets)
        if len(self.edge_src) != len(self.edge_dst):
            raise ValueError("edge_src and edge_dst must have the same length")
        if len(self.endpoint_nodes) != len(self.endpoint_targets):
            raise ValueError("endpoint_nodes and endpoint_targets must align")


class GNNRegressor(Estimator):
    """GraphSAGE-style regressor supervised at endpoint nodes."""

    def __init__(
        self,
        hidden_size: int = 48,
        n_layers: int = 3,
        learning_rate: float = 2e-3,
        epochs: int = 150,
        weight_decay: float = 1e-5,
        seed: int = 0,
    ):
        self.hidden_size = hidden_size
        self.n_layers = n_layers
        self.learning_rate = learning_rate
        self.epochs = epochs
        self.weight_decay = weight_decay
        self.seed = seed

    # -- parameters ----------------------------------------------------------------

    def _init_parameters(self, in_features: int) -> None:
        rng = np.random.default_rng(self.seed)

        def glorot(fan_in: int, fan_out: int) -> np.ndarray:
            limit = np.sqrt(6.0 / (fan_in + fan_out))
            return rng.uniform(-limit, limit, size=(fan_in, fan_out))

        self.weights_: List[np.ndarray] = []
        self.biases_: List[np.ndarray] = []
        size = in_features
        for _ in range(self.n_layers):
            self.weights_.append(glorot(2 * size, self.hidden_size))
            self.biases_.append(np.zeros(self.hidden_size))
            size = self.hidden_size
        self.head_w_ = glorot(size, 1)
        self.head_b_ = np.zeros(1)
        self._adam_w_ = [_AdamState(w.shape) for w in self.weights_]
        self._adam_b_ = [_AdamState(b.shape) for b in self.biases_]
        self._adam_head_w_ = _AdamState(self.head_w_.shape)
        self._adam_head_b_ = _AdamState(self.head_b_.shape)

    # -- message passing -------------------------------------------------------------

    @staticmethod
    def _aggregate(hidden: np.ndarray, graph: GraphData) -> np.ndarray:
        """Mean of fan-in neighbour representations for every node."""
        n_nodes = hidden.shape[0]
        sums = np.zeros_like(hidden)
        np.add.at(sums, graph.edge_dst, hidden[graph.edge_src])
        indegree = np.zeros(n_nodes)
        np.add.at(indegree, graph.edge_dst, 1.0)
        indegree = np.maximum(indegree, 1.0)
        return sums / indegree[:, None]

    def _forward(self, graph: GraphData) -> Tuple[np.ndarray, List[dict]]:
        hidden = graph.node_features
        caches: List[dict] = []
        for weight, bias in zip(self.weights_, self.biases_):
            aggregated = self._aggregate(hidden, graph)
            combined = np.concatenate([hidden, aggregated], axis=1)
            pre = combined @ weight + bias
            activated = np.maximum(pre, 0.0)
            caches.append({"combined": combined, "pre": pre})
            hidden = activated
        scores = (hidden @ self.head_w_ + self.head_b_).ravel()
        caches.append({"final_hidden": hidden})
        return scores, caches

    def _backward(
        self, graph: GraphData, caches: List[dict], node_output_grad: np.ndarray
    ) -> None:
        final_hidden = caches[-1]["final_hidden"]
        d_scores = node_output_grad.reshape(-1, 1)
        grad_head_w = final_hidden.T @ d_scores + self.weight_decay * self.head_w_
        grad_head_b = d_scores.sum(axis=0)
        d_hidden = d_scores @ self.head_w_.T

        grads_w = [np.zeros_like(w) for w in self.weights_]
        grads_b = [np.zeros_like(b) for b in self.biases_]

        for layer in range(self.n_layers - 1, -1, -1):
            cache = caches[layer]
            d_pre = d_hidden * (cache["pre"] > 0.0)
            grads_w[layer] = cache["combined"].T @ d_pre + self.weight_decay * self.weights_[layer]
            grads_b[layer] = d_pre.sum(axis=0)
            d_combined = d_pre @ self.weights_[layer].T
            size = d_combined.shape[1] // 2
            d_self = d_combined[:, :size]
            d_aggregated = d_combined[:, size:]
            # Back-propagate the mean aggregation to the fan-in nodes.
            indegree = np.zeros(len(d_self))
            np.add.at(indegree, graph.edge_dst, 1.0)
            indegree = np.maximum(indegree, 1.0)
            scattered = np.zeros_like(d_self)
            np.add.at(
                scattered,
                graph.edge_src,
                d_aggregated[graph.edge_dst] / indegree[graph.edge_dst, None],
            )
            d_hidden = d_self + scattered

        # Adam updates.
        for layer in range(self.n_layers):
            self.weights_[layer] -= self._adam_w_[layer].update(grads_w[layer], self.learning_rate)
            self.biases_[layer] -= self._adam_b_[layer].update(grads_b[layer], self.learning_rate)
        self.head_w_ -= self._adam_head_w_.update(grad_head_w, self.learning_rate)
        self.head_b_ -= self._adam_head_b_.update(grad_head_b, self.learning_rate)

    # -- public API --------------------------------------------------------------------

    def fit_graphs(self, graphs: Sequence[GraphData]) -> "GNNRegressor":
        """Train on a collection of design graphs."""
        if not graphs:
            raise ValueError("at least one graph is required")
        in_features = graphs[0].node_features.shape[1]
        self._init_parameters(in_features)
        self.train_losses_: List[float] = []

        for _ in range(self.epochs):
            epoch_loss = 0.0
            for graph in graphs:
                scores, caches = self._forward(graph)
                predictions = scores[graph.endpoint_nodes]
                residual = predictions - graph.endpoint_targets
                loss = 0.5 * float(np.mean(residual**2))
                node_grad = np.zeros_like(scores)
                node_grad[graph.endpoint_nodes] = residual / max(len(residual), 1)
                self._backward(graph, caches, node_grad)
                epoch_loss += loss
            self.train_losses_.append(epoch_loss / len(graphs))
        return self

    def predict_graph(self, graph: GraphData) -> np.ndarray:
        """Predicted arrival time at the graph's endpoint nodes."""
        self._check_fitted("weights_")
        scores, _ = self._forward(graph)
        return scores[graph.endpoint_nodes]

    # -- serialization ---------------------------------------------------------------

    def _fitted_state(self) -> dict:
        """Layer + head parameters; Adam moments are training-only."""
        self._check_fitted("weights_")
        return {
            "weights": [w.copy() for w in self.weights_],
            "biases": [b.copy() for b in self.biases_],
            "head_w": self.head_w_.copy(),
            "head_b": self.head_b_.copy(),
        }

    def _restore_fitted(self, fitted) -> None:
        self.weights_ = [np.asarray(w, dtype=float) for w in fitted["weights"]]
        self.biases_ = [np.asarray(b, dtype=float) for b in fitted["biases"]]
        self.head_w_ = np.asarray(fitted["head_w"], dtype=float)
        self.head_b_ = np.asarray(fitted["head_b"], dtype=float)

    # The generic Estimator API maps onto single-graph usage.
    def fit(self, features: np.ndarray, targets: np.ndarray) -> "GNNRegressor":  # pragma: no cover
        raise NotImplementedError("use fit_graphs() with GraphData records")

    def predict(self, features: np.ndarray) -> np.ndarray:  # pragma: no cover
        raise NotImplementedError("use predict_graph() with a GraphData record")
