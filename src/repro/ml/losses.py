"""Customized loss functions for register-endpoint arrival-time modelling.

The centre-piece is the paper's *max arrival time* loss (Equation 3): every
endpoint is represented by several sampled paths (the slowest pseudo-STA path
plus K random paths); the model scores each path and the endpoint prediction
is the maximum of the path scores.  The loss compares that maximum against
the endpoint's post-synthesis arrival-time label and back-propagates through
the max, i.e. the gradient is routed to the path(s) that currently achieve
the maximum.  This file provides:

* :func:`group_max` / :func:`group_argmax` — grouped max utilities,
* :class:`GroupedMaxSquaredError` — a boosting objective implementing the
  max-loss for :class:`repro.ml.gbm.GradientBoostingRegressor`,
* :func:`grouped_max_loss_and_gradient` — the same loss exposed as a plain
  value/gradient pair for gradient-descent models (MLP, transformer),
* :func:`grouped_softmax_loss_and_gradient` — a smooth log-sum-exp variant
  that spreads the gradient over near-maximal paths.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.ml.base import as_1d_array


def _check_groups(groups: np.ndarray, n_rows: int) -> np.ndarray:
    groups = np.asarray(groups, dtype=int).ravel()
    if len(groups) != n_rows:
        raise ValueError("groups must assign one group id to every row")
    if groups.min(initial=0) < 0:
        raise ValueError("group ids must be non-negative")
    return groups


def group_max(values: np.ndarray, groups: np.ndarray, n_groups: Optional[int] = None) -> np.ndarray:
    """Maximum of ``values`` within each group id."""
    values = as_1d_array(values)
    groups = _check_groups(groups, len(values))
    count = int(groups.max()) + 1 if n_groups is None else n_groups
    out = np.full(count, -np.inf)
    np.maximum.at(out, groups, values)
    return out


def _argmax_from_maxima(
    values: np.ndarray, groups: np.ndarray, maxima: np.ndarray
) -> np.ndarray:
    """First row achieving each group's (precomputed) maximum; -1 when none."""
    best_index = np.full(len(maxima), -1, dtype=int)
    winners = np.nonzero(values >= maxima[groups])[0]
    # Fancy assignment keeps the *last* write per group; feed rows reversed so
    # the first winner in row order is what sticks.
    best_index[groups[winners[::-1]]] = winners[::-1]
    best_index[np.isneginf(maxima)] = -1
    return best_index


def group_argmax(values: np.ndarray, groups: np.ndarray, n_groups: Optional[int] = None) -> np.ndarray:
    """Row index achieving the maximum within each group (first winner).

    Ties break on the first row in input order; groups with no rows (or whose
    maximum never exceeds the ``-inf`` sentinel) report ``-1``.
    """
    values = as_1d_array(values)
    groups = _check_groups(groups, len(values))
    count = int(groups.max(initial=-1)) + 1 if n_groups is None else n_groups
    return _argmax_from_maxima(values, groups, group_max(values, groups, count))


def grouped_max_loss_and_gradient(
    predictions: np.ndarray,
    groups: np.ndarray,
    group_targets: np.ndarray,
) -> Tuple[float, np.ndarray]:
    """Max-loss value and per-row gradient (subgradient through the max)."""
    predictions = as_1d_array(predictions)
    group_targets = as_1d_array(group_targets)
    groups = _check_groups(groups, len(predictions))
    n_groups = len(group_targets)

    maxima = group_max(predictions, groups, n_groups)
    winners = _argmax_from_maxima(predictions, groups, maxima)
    residual = maxima - group_targets
    loss = float(0.5 * np.mean(residual**2))

    gradient = np.zeros_like(predictions)
    valid = winners >= 0
    gradient[winners[valid]] = residual[valid] / max(n_groups, 1)
    return loss, gradient


def grouped_softmax_loss_and_gradient(
    predictions: np.ndarray,
    groups: np.ndarray,
    group_targets: np.ndarray,
    temperature: float = 8.0,
) -> Tuple[float, np.ndarray]:
    """Smooth variant: the group aggregate is a log-sum-exp soft maximum.

    The gradient is spread over all paths proportionally to their softmax
    weight, which stabilizes the early epochs of gradient-descent training.
    """
    predictions = as_1d_array(predictions)
    group_targets = as_1d_array(group_targets)
    groups = _check_groups(groups, len(predictions))
    n_groups = len(group_targets)
    if temperature <= 0:
        raise ValueError("temperature must be positive")

    # log-sum-exp per group with the max subtracted for stability.
    maxima = group_max(predictions, groups, n_groups)
    shifted = np.exp((predictions - maxima[groups]) / temperature)
    denom = np.zeros(n_groups)
    np.add.at(denom, groups, shifted)
    soft_max = maxima + temperature * np.log(denom)

    residual = soft_max - group_targets
    loss = float(0.5 * np.mean(residual**2))

    weights = shifted / denom[groups]
    gradient = residual[groups] * weights / max(n_groups, 1)
    return loss, gradient


class GroupedMaxSquaredError:
    """Boosting objective implementing the paper's max arrival-time loss.

    ``groups`` assigns every training row (= sampled path) to its endpoint;
    ``group_targets`` holds one label per endpoint.  The per-row ``targets``
    passed by the booster are ignored — the endpoint labels are what matter —
    so callers typically pass ``group_targets[groups]`` for bookkeeping.
    """

    def __init__(self, groups: np.ndarray, group_targets: np.ndarray, hessian_floor: float = 0.05):
        self.group_targets = as_1d_array(group_targets)
        self.groups = np.asarray(groups, dtype=int).ravel()
        if len(self.groups) and int(self.groups.max()) >= len(self.group_targets):
            raise ValueError("group ids must index into group_targets")
        if len(self.groups) and int(self.groups.min()) < 0:
            raise ValueError("group ids must be non-negative")
        self.hessian_floor = hessian_floor

    def row_targets(self) -> np.ndarray:
        """Per-row broadcast of the endpoint labels (for the booster's y)."""
        return self.group_targets[self.groups]

    # -- Objective protocol -----------------------------------------------------

    def initial_prediction(self, targets: np.ndarray) -> float:
        return float(np.mean(self.group_targets)) if len(self.group_targets) else 0.0

    def gradients(self, predictions: np.ndarray, targets: np.ndarray):
        n_groups = len(self.group_targets)
        predictions = as_1d_array(predictions)
        maxima = group_max(predictions, self.groups, n_groups)
        winners = _argmax_from_maxima(predictions, self.groups, maxima)
        residual = maxima - self.group_targets

        grad = np.zeros_like(predictions)
        hess = np.full_like(predictions, self.hessian_floor)
        valid = winners >= 0
        grad[winners[valid]] = residual[valid]
        hess[winners[valid]] = 1.0
        return grad, hess

    def loss(self, predictions: np.ndarray, targets: np.ndarray) -> float:
        maxima = group_max(predictions, self.groups, len(self.group_targets))
        return float(0.5 * np.mean((maxima - self.group_targets) ** 2))
