"""Transformer path model (single-head encoder + MLP head, numpy).

The paper compares a model that applies a transformer to the *local* timing
path (the sequence of operators along a sampled path) and fuses it with an
MLP over the global design/cone features.  This module implements that model
from scratch:

* every path is a sequence of per-operator token feature vectors,
* a learned input projection + single-head self-attention + position-wise
  feed-forward encoder produces contextualized tokens,
* mean pooling over tokens is concatenated with the global feature vector and
  fed to a two-layer MLP head that predicts the path arrival time.

Training uses Adam on mean squared error (optionally through the grouped max
loss, like the other path models).  The implementation favours clarity over
speed: sequences are padded to a common length and processed as dense
batches.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.ml.base import Estimator, as_1d_array, as_2d_array
from repro.ml.losses import grouped_max_loss_and_gradient
from repro.ml.mlp import _AdamState


def pad_sequences(sequences: Sequence[np.ndarray], max_length: Optional[int] = None) -> Tuple[np.ndarray, np.ndarray]:
    """Pad a list of (length x d) token matrices into a dense batch.

    Returns ``(tokens, mask)`` where ``tokens`` has shape
    ``(n_sequences, max_length, d)`` and ``mask`` is 1.0 for real tokens.
    """
    if not sequences:
        raise ValueError("at least one sequence is required")
    dim = sequences[0].shape[1]
    length = max_length or max(len(s) for s in sequences)
    tokens = np.zeros((len(sequences), length, dim))
    mask = np.zeros((len(sequences), length))
    for index, sequence in enumerate(sequences):
        usable = min(len(sequence), length)
        tokens[index, :usable] = sequence[-usable:]
        mask[index, :usable] = 1.0
    return tokens, mask


class TransformerPathRegressor(Estimator):
    """Single-head transformer encoder over path tokens plus a global MLP."""

    def __init__(
        self,
        d_model: int = 24,
        d_ff: int = 48,
        head_hidden: int = 64,
        learning_rate: float = 2e-3,
        epochs: int = 80,
        batch_size: int = 128,
        max_length: int = 24,
        seed: int = 0,
    ):
        self.d_model = d_model
        self.d_ff = d_ff
        self.head_hidden = head_hidden
        self.learning_rate = learning_rate
        self.epochs = epochs
        self.batch_size = batch_size
        self.max_length = max_length
        self.seed = seed

    # -- parameters ----------------------------------------------------------------

    def _init_parameters(self, token_dim: int, global_dim: int) -> None:
        rng = np.random.default_rng(self.seed)

        def glorot(fan_in: int, fan_out: int) -> np.ndarray:
            limit = np.sqrt(6.0 / (fan_in + fan_out))
            return rng.uniform(-limit, limit, size=(fan_in, fan_out))

        d = self.d_model
        self.params_ = {
            "embed": glorot(token_dim, d),
            "pos": 0.01 * rng.standard_normal((self.max_length, d)),
            "wq": glorot(d, d),
            "wk": glorot(d, d),
            "wv": glorot(d, d),
            "wo": glorot(d, d),
            "ff1": glorot(d, self.d_ff),
            "ff1_b": np.zeros(self.d_ff),
            "ff2": glorot(self.d_ff, d),
            "ff2_b": np.zeros(d),
            "head1": glorot(d + global_dim, self.head_hidden),
            "head1_b": np.zeros(self.head_hidden),
            "head2": glorot(self.head_hidden, 1),
            "head2_b": np.zeros(1),
        }
        self._adam_ = {key: _AdamState(value.shape) for key, value in self.params_.items()}

    # -- forward -------------------------------------------------------------------

    def _forward(
        self, tokens: np.ndarray, mask: np.ndarray, global_features: np.ndarray
    ) -> Tuple[np.ndarray, dict]:
        p = self.params_
        batch, length, _ = tokens.shape
        scale = 1.0 / np.sqrt(self.d_model)

        embedded = tokens @ p["embed"] + p["pos"][:length][None, :, :]
        q = embedded @ p["wq"]
        k = embedded @ p["wk"]
        v = embedded @ p["wv"]

        scores = np.einsum("bld,bmd->blm", q, k) * scale
        scores = scores + (mask[:, None, :] - 1.0) * 1e9  # mask out padding keys
        scores = scores - scores.max(axis=-1, keepdims=True)
        attention = np.exp(scores)
        attention = attention / attention.sum(axis=-1, keepdims=True)

        attended = np.einsum("blm,bmd->bld", attention, v) @ p["wo"]
        encoded = embedded + attended  # residual connection

        ff_pre = encoded @ p["ff1"] + p["ff1_b"]
        ff_act = np.maximum(ff_pre, 0.0)
        ff_out = ff_act @ p["ff2"] + p["ff2_b"]
        encoded2 = encoded + ff_out  # residual connection

        token_counts = np.maximum(mask.sum(axis=1, keepdims=True), 1.0)
        pooled = (encoded2 * mask[:, :, None]).sum(axis=1) / token_counts

        head_in = np.concatenate([pooled, global_features], axis=1)
        hidden_pre = head_in @ p["head1"] + p["head1_b"]
        hidden = np.maximum(hidden_pre, 0.0)
        output = (hidden @ p["head2"] + p["head2_b"]).ravel()

        cache = {
            "tokens": tokens,
            "mask": mask,
            "global": global_features,
            "embedded": embedded,
            "q": q,
            "k": k,
            "v": v,
            "attention": attention,
            "attended_pre_wo": np.einsum("blm,bmd->bld", attention, v),
            "encoded": encoded,
            "ff_pre": ff_pre,
            "ff_act": ff_act,
            "encoded2": encoded2,
            "token_counts": token_counts,
            "pooled": pooled,
            "head_in": head_in,
            "hidden_pre": hidden_pre,
            "hidden": hidden,
            "scale": scale,
        }
        return output, cache

    # -- backward ------------------------------------------------------------------

    def _backward(self, cache: dict, output_gradient: np.ndarray) -> dict:
        p = self.params_
        grads = {key: np.zeros_like(value) for key, value in p.items()}

        d_output = output_gradient.reshape(-1, 1)
        grads["head2"] = cache["hidden"].T @ d_output
        grads["head2_b"] = d_output.sum(axis=0)
        d_hidden = d_output @ p["head2"].T
        d_hidden_pre = d_hidden * (cache["hidden_pre"] > 0.0)
        grads["head1"] = cache["head_in"].T @ d_hidden_pre
        grads["head1_b"] = d_hidden_pre.sum(axis=0)
        d_head_in = d_hidden_pre @ p["head1"].T

        d_pooled = d_head_in[:, : self.d_model]
        # (the gradient w.r.t. global features is not needed)

        mask = cache["mask"]
        d_encoded2 = (
            d_pooled[:, None, :] * mask[:, :, None] / cache["token_counts"][:, :, None]
        )

        # Feed-forward block (residual).
        d_ff_out = d_encoded2
        grads["ff2"] = np.einsum("blf,bld->fd", cache["ff_act"], d_ff_out)
        grads["ff2_b"] = d_ff_out.sum(axis=(0, 1))
        d_ff_act = d_ff_out @ p["ff2"].T
        d_ff_pre = d_ff_act * (cache["ff_pre"] > 0.0)
        grads["ff1"] = np.einsum("bld,blf->df", cache["encoded"], d_ff_pre)
        grads["ff1_b"] = d_ff_pre.sum(axis=(0, 1))
        d_encoded = d_encoded2 + d_ff_pre @ p["ff1"].T

        # Attention block (residual).
        d_attended = d_encoded
        grads["wo"] = np.einsum("bld,ble->de", cache["attended_pre_wo"], d_attended)
        d_attn_out = d_attended @ p["wo"].T
        d_attention = np.einsum("bld,bmd->blm", d_attn_out, cache["v"])
        d_v = np.einsum("blm,bld->bmd", cache["attention"], d_attn_out)

        attention = cache["attention"]
        d_scores = attention * (
            d_attention - (d_attention * attention).sum(axis=-1, keepdims=True)
        )
        scale = cache["scale"]
        d_q = np.einsum("blm,bmd->bld", d_scores, cache["k"]) * scale
        d_k = np.einsum("blm,bld->bmd", d_scores, cache["q"]) * scale

        embedded = cache["embedded"]
        grads["wq"] = np.einsum("bld,ble->de", embedded, d_q)
        grads["wk"] = np.einsum("bld,ble->de", embedded, d_k)
        grads["wv"] = np.einsum("bld,ble->de", embedded, d_v)

        d_embedded = (
            d_encoded  # residual path
            + d_q @ p["wq"].T
            + d_k @ p["wk"].T
            + d_v @ p["wv"].T
        )
        grads["embed"] = np.einsum("blt,bld->td", cache["tokens"], d_embedded)
        grads["pos"][: d_embedded.shape[1]] = d_embedded.sum(axis=0)
        return grads

    def _apply(self, grads: dict) -> None:
        for key, gradient in grads.items():
            self.params_[key] -= self._adam_[key].update(gradient, self.learning_rate)

    # -- public API ----------------------------------------------------------------

    def fit(
        self,
        sequences: Sequence[np.ndarray],
        global_features: np.ndarray,
        targets: np.ndarray,
        groups: Optional[np.ndarray] = None,
        group_targets: Optional[np.ndarray] = None,
    ) -> "TransformerPathRegressor":
        """Train on path token sequences plus global features.

        When ``groups``/``group_targets`` are given, the grouped max
        arrival-time loss is used (one group per endpoint); otherwise plain
        per-row mean squared error.
        """
        tokens, mask = pad_sequences(sequences, self.max_length)
        global_features = as_2d_array(global_features)
        y = as_1d_array(targets)
        self._init_parameters(tokens.shape[2], global_features.shape[1])
        rng = np.random.default_rng(self.seed)
        self.train_losses_: List[float] = []
        use_grouped = groups is not None and group_targets is not None
        if use_grouped:
            groups = np.asarray(groups, dtype=int).ravel()
            group_targets = as_1d_array(group_targets)

        for _ in range(self.epochs):
            if use_grouped:
                predictions, cache = self._forward(tokens, mask, global_features)
                loss, gradient = grouped_max_loss_and_gradient(predictions, groups, group_targets)
                grads = self._backward(cache, gradient)
                self._apply(grads)
                self.train_losses_.append(loss)
            else:
                order = rng.permutation(len(y))
                epoch_loss, n_batches = 0.0, 0
                for start in range(0, len(y), self.batch_size):
                    batch = order[start : start + self.batch_size]
                    predictions, cache = self._forward(
                        tokens[batch], mask[batch], global_features[batch]
                    )
                    residual = predictions - y[batch]
                    gradient = residual / len(batch)
                    grads = self._backward(cache, gradient)
                    self._apply(grads)
                    epoch_loss += 0.5 * float(np.mean(residual**2))
                    n_batches += 1
                self.train_losses_.append(epoch_loss / max(n_batches, 1))
        return self

    def predict(self, sequences: Sequence[np.ndarray], global_features: np.ndarray) -> np.ndarray:
        self._check_fitted("params_")
        tokens, mask = pad_sequences(sequences, self.max_length)
        predictions, _ = self._forward(tokens, mask, as_2d_array(global_features))
        return predictions

    # -- serialization ---------------------------------------------------------------

    def _fitted_state(self) -> dict:
        """All parameter tensors by name; Adam moments are dropped."""
        self._check_fitted("params_")
        return {"tensors": {key: value.copy() for key, value in self.params_.items()}}

    def _restore_fitted(self, fitted) -> None:
        self.params_ = {
            key: np.asarray(value, dtype=float) for key, value in fitted["tensors"].items()
        }
