// Tech: NanGate45-like (synthetic)
// Predicted WNS: -158.9ps, TNS: -1011.3ps
// Annotated by RTL-Timer reproduction (per-signal predicted slack and rank group)
// Synthetic benchmark design: b17
// family=itc99 hdl=VHDL seed=201
module b17 (
  clk, in_data0, in_data1, in_data2, in_data3, in_ctrl0, in_ctrl1, in_ctrl2, in_ctrl3, in_ctrl4, out_data0, out_flag
);
  input clk;
  input [7:0] in_data0;
  input [7:0] in_data1;
  input [7:0] in_data2;
  input [7:0] in_data3;
  input in_ctrl0;
  input in_ctrl1;
  input in_ctrl2;
  input in_ctrl3;
  input in_ctrl4;
  output [7:0] out_data0;
  output out_flag;

  reg ctrl_r0;  // (ctrl_r0) Slack@459.5ps rank@g4
  reg ctrl_r1;  // (ctrl_r1) Slack@260.3ps rank@g3
  reg ctrl_r2;  // (ctrl_r2) Slack@342.4ps rank@g4
  reg ctrl_r3;  // (ctrl_r3) Slack@260.3ps rank@g3
  reg ctrl_r4;  // (ctrl_r4) Slack@342.4ps rank@g4
  reg ctrl_r5;  // (ctrl_r5) Slack@345.5ps rank@g4
  reg ctrl_r6;  // (ctrl_r6) Slack@280.3ps rank@g3
  reg ctrl_r7;  // (ctrl_r7) Slack@345.5ps rank@g4
  reg ctrl_r8;  // (ctrl_r8) Slack@345.5ps rank@g4
  reg ctrl_r9;  // (ctrl_r9) Slack@345.5ps rank@g4
  reg [7:0] s0_r0;  // (s0_r0) Slack@164.8ps rank@g3
  wire w0;
  wire [7:0] w1;
  reg [7:0] s0_r1;  // (s0_r1) Slack@-2.1ps rank@g2
  wire w2;
  wire [7:0] w3;
  reg [7:0] s0_r2;  // (s0_r2) Slack@284.5ps rank@g3
  wire [7:0] w4;
  reg [7:0] s0_r3;  // (s0_r3) Slack@302.2ps rank@g4
  wire [7:0] w5;
  reg [7:0] s0_r4;  // (s0_r4) Slack@151.8ps rank@g2
  wire w6;
  wire [7:0] w7;
  reg [7:0] s0_r5;  // (s0_r5) Slack@114.9ps rank@g2
  wire [7:0] w8;
  reg [7:0] s1_r0;  // (s1_r0) Slack@-59.9ps rank@g1
  wire w9;
  wire w10;
  wire [7:0] w11;
  reg [7:0] s1_r1;  // (s1_r1) Slack@214.1ps rank@g3
  wire [7:0] w12;
  reg [7:0] s1_r2;  // (s1_r2) Slack@203.3ps rank@g3
  wire [7:0] w13;
  reg [7:0] s1_r3;  // (s1_r3) Slack@261.8ps rank@g3
  wire [7:0] w14;
  reg [7:0] s1_r4;  // (s1_r4) Slack@284.3ps rank@g4
  wire [7:0] w15;
  reg [7:0] s1_r5;  // (s1_r5) Slack@-56.9ps rank@g2
  wire w16;
  wire w17;
  wire [7:0] w18;
  reg [7:0] s2_r0;  // (s2_r0) Slack@320.8ps rank@g4
  wire [7:0] w19;
  reg [7:0] s2_r1;  // (s2_r1) Slack@-43.5ps rank@g2
  wire w20;
  wire [7:0] w21;
  reg [7:0] s2_r2;  // (s2_r2) Slack@93.5ps rank@g2
  wire w22;
  wire w23;
  wire [7:0] w24;
  reg [7:0] s2_r3;  // (s2_r3) Slack@-60.5ps rank@g2
  wire w25;
  wire [7:0] w26;
  reg [7:0] s2_r4;  // (s2_r4) Slack@113.0ps rank@g2
  wire w27;
  wire [7:0] w28;
  reg [7:0] s2_r5;  // (s2_r5) Slack@232.3ps rank@g3
  wire [7:0] w29;
  reg [7:0] s3_r0;  // (s3_r0) Slack@-57.8ps rank@g1
  wire [7:0] w30;
  reg [7:0] s3_r1;  // (s3_r1) Slack@134.4ps rank@g2
  wire w31;
  wire [7:0] w32;
  reg [7:0] s3_r2;  // (s3_r2) Slack@150.5ps rank@g2
  wire [7:0] w33;
  reg [7:0] s3_r3;  // (s3_r3) Slack@178.0ps rank@g2
  wire [7:0] w34;
  reg [7:0] s3_r4;  // (s3_r4) Slack@153.6ps rank@g2
  wire [7:0] w35;
  reg [7:0] s3_r5;  // (s3_r5) Slack@246.7ps rank@g3
  wire [7:0] w36;
  wire [7:0] out_data0;
  wire out_flag;

  assign w0 = ((in_data2[7] ? (in_data0) : (in_data2))) == ((in_data3[3] ? (in_data0) : (in_data3)));
  assign w1 = ((((((in_data2) | (in_data1))) | (((in_data0) ^ (in_data0))))) | ((w0 ? (((in_data2) & (in_data0))) : (~(((in_data2) & (in_data0)))))));
  assign w2 = (in_data2) == (in_data1);
  assign w3 = (in_data1[0] ? ((((w2 ? (in_data2) : (~(in_data2)))) + ((in_data3[6] ? (in_data2) : (in_data0))))) : (in_data1));
  assign w4 = ~(in_data2);
  assign w5 = (((in_data2[5] ? (((in_data1) ^ (in_data0))) : (in_data0))) & (in_data2));
  assign w6 = ((in_data1[4] ? (in_data0) : (in_data3))) == (((in_data1) & (in_data3)));
  assign w7 = ((in_data0) ^ ((w6 ? (((in_data1) | (in_data1))) : (~(((in_data1) | (in_data1)))))));
  assign w8 = ((((((in_data3) + (in_data1))) + ((in_data2[2] ? (in_data0) : (in_data0))))) & (((((in_data2) | (in_data3))) | (in_data3))));
  assign w9 = ((s0_r2[1] ? (((s0_r1) ^ (s0_r3))) : (((s0_r3) & (s0_r0))))) == ((s0_r3[6] ? (s0_r3) : (((s0_r4) + (s0_r2)))));
  assign w10 = (s0_r3) == (s0_r3);
  assign w11 = (w9 ? ((s0_r3[6] ? (((s0_r5) + (s0_r4))) : ((w10 ? (s0_r0) : (~(s0_r0)))))) : (~((s0_r3[6] ? (((s0_r5) + (s0_r4))) : ((w10 ? (s0_r0) : (~(s0_r0))))))));
  assign w12 = ((s0_r3) & ((((s0_r3[0] ? (in_data0) : (s0_r5))) & (in_data0))));
  assign w13 = ((in_data0) | (((s0_r5) | (((s0_r4) ^ (s0_r3))))));
  assign w14 = (s0_r3[4] ? (((((s0_r3) & (s0_r3))) & (((s0_r4) & (s0_r4))))) : (s0_r5));
  assign w15 = ((s0_r5) & (~(s0_r3)));
  assign w16 = (((s0_r1) & (s0_r5))) == ((s0_r2[1] ? (s0_r2) : (s0_r1)));
  assign w17 = (s0_r2) == (s0_r3);
  assign w18 = (((w16 ? ((s0_r2[7] ? (s0_r0) : (in_data0))) : (~((s0_r2[7] ? (s0_r0) : (in_data0)))))) + (((in_data0) & ((w17 ? (s0_r4) : (~(s0_r4)))))));
  assign w19 = (s1_r1[5] ? (s1_r4) : (((((in_data0) & (in_data0))) & (((s1_r4) ^ (in_data0))))));
  assign w20 = (((((s1_r0) & (s1_r0))) + (s1_r5))) == (((s1_r3) | (((s1_r2) | (s1_r0)))));
  assign w21 = (w20 ? (((((s1_r1) & (s1_r1))) & (((s1_r3) | (s1_r5))))) : (~(((((s1_r1) & (s1_r1))) & (((s1_r3) | (s1_r5)))))));
  assign w22 = (s1_r0) == (s1_r4);
  assign w23 = (~((w22 ? (s1_r2) : (~(s1_r2))))) == (s1_r2);
  assign w24 = (w23 ? (((((s1_r1) & (s1_r5))) ^ (((s1_r0) ^ (s1_r4))))) : (~(((((s1_r1) & (s1_r5))) ^ (((s1_r0) ^ (s1_r4)))))));
  assign w25 = (s1_r0) == (s1_r1);
  assign w26 = ((~(((s1_r5) | (s1_r3)))) + ((s1_r5[4] ? (((s1_r1) & (s1_r1))) : ((w25 ? (in_data0) : (~(in_data0)))))));
  assign w27 = (s1_r4) == (s1_r5);
  assign w28 = (((s1_r2[6] ? (((s1_r1) ^ (s1_r0))) : (((in_data0) ^ (s1_r5))))) & (~((w27 ? (in_data0) : (~(in_data0))))));
  assign w29 = ((s1_r5) ^ ((s1_r5[3] ? (((s1_r0) ^ (s1_r1))) : ((s1_r5[2] ? (s1_r0) : (s1_r1))))));
  assign w30 = (((s2_r3[2] ? (s2_r3) : ((s2_r1[2] ? (s2_r1) : (s2_r1))))) ^ ((s2_r2[7] ? (((s2_r5) + (s2_r3))) : (((s2_r0) + (s0_r2))))));
  assign w31 = (s2_r5) == (s2_r4);
  assign w32 = ~(((s2_r0) ^ ((w31 ? (s2_r2) : (~(s2_r2))))));
  assign w33 = ~((s2_r4[6] ? (((s2_r5) | (s0_r2))) : (((s2_r4) ^ (s0_r2)))));
  assign w34 = (((s2_r1[7] ? (((s2_r5) & (s0_r2))) : (s0_r2))) | (((s2_r4) & (((s2_r1) & (s2_r1))))));
  assign w35 = ((s2_r4) | (((((s2_r3) ^ (s0_r2))) & (((s2_r1) & (s2_r5))))));
  assign w36 = ~((((s0_r2[0] ? (s2_r0) : (s2_r5))) ^ ((s2_r3[4] ? (s2_r1) : (s2_r3)))));
  assign out_data0 = s3_r0;
  assign out_flag = ctrl_r0 ^ ctrl_r1 ^ ctrl_r2 ^ ctrl_r3;

  always @(posedge clk) begin
      ctrl_r0 <= (in_ctrl0 ^ in_ctrl0) | (~in_ctrl2 & in_ctrl0);
      ctrl_r1 <= (in_ctrl3 ^ ctrl_r0) | (~in_ctrl0 & ctrl_r0);
      ctrl_r2 <= (in_ctrl2 ^ ctrl_r1) | (~in_ctrl2 & ctrl_r1);
      ctrl_r3 <= (in_ctrl3 ^ ctrl_r2) | (~in_ctrl4 & ctrl_r2);
      ctrl_r4 <= (in_ctrl2 ^ ctrl_r3) | (~in_ctrl3 & ctrl_r3);
      ctrl_r5 <= (in_ctrl3 ^ ctrl_r4) | (~in_ctrl4 & ctrl_r4);
      ctrl_r6 <= (in_ctrl4 ^ ctrl_r5) | (~in_ctrl3 & ctrl_r5);
      ctrl_r7 <= (in_ctrl1 ^ ctrl_r6) | (~in_ctrl4 & ctrl_r6);
      ctrl_r8 <= (in_ctrl3 ^ ctrl_r7) | (~in_ctrl0 & ctrl_r7);
      ctrl_r9 <= (in_ctrl4 ^ ctrl_r8) | (~in_ctrl1 & ctrl_r8);
      if (ctrl_r2) s0_r0 <= w1;
      s0_r1 <= w3;
      if (ctrl_r0) s0_r2 <= w4;
      if (ctrl_r5) s0_r3 <= w5;
      if (ctrl_r9) s0_r4 <= w7;
      if (in_ctrl4) s0_r5 <= w8;
      if (ctrl_r5) s1_r0 <= w11;
      if (in_ctrl4) s1_r1 <= w12;
      s1_r2 <= w13;
      s1_r3 <= w14;
      s1_r4 <= w15;
      s1_r5 <= w18;
      s2_r0 <= w19;
      if (in_ctrl1) s2_r1 <= w21;
      s2_r2 <= w24;
      s2_r3 <= w26;
      if (ctrl_r2) s2_r4 <= w28;
      s2_r5 <= w29;
      s3_r0 <= w30;
      s3_r1 <= w32;
      if (in_ctrl2) s3_r2 <= w33;
      if (ctrl_r0) s3_r3 <= w34;
      if (in_ctrl1) s3_r4 <= w35;
      s3_r5 <= w36;
  end
endmodule
