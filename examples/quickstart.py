"""Quickstart: predict fine-grained RTL timing for your own Verilog.

Trains RTL-Timer **once** on a handful of generated benchmark designs,
saves the fitted model as a single-file bundle, and from then on loads it
back (bit-identical predictions, no re-training) to predict per-signal
slack, criticality ranking and overall WNS/TNS for a small user-provided
Verilog module — all before any synthesis of that module is run.

Run with:  python examples/quickstart.py
"""

from pathlib import Path

from repro.core import (
    BitwiseConfig,
    OverallConfig,
    RTLTimer,
    RTLTimerConfig,
    SignalwiseConfig,
    build_dataset,
    build_design_record,
)
from repro.hdl.generate import BENCHMARK_SPECS

#: Where the fitted model bundle lands (delete it to force a re-train).
BUNDLE_PATH = Path(__file__).parent / "output" / "quickstart_model.bundle"

USER_VERILOG = """
module accumulator (clk, start, in_a, in_b, mode, out_sum, out_flag);
  input clk;
  input start;
  input [15:0] in_a;
  input [15:0] in_b;
  input [1:0] mode;
  output [15:0] out_sum;
  output out_flag;

  reg [15:0] acc;
  reg [15:0] stage;
  reg flag;
  wire [15:0] mixed;
  wire [15:0] next_acc;

  assign mixed = (mode == 2'd0) ? (in_a + in_b)
               : (mode == 2'd1) ? (in_a ^ in_b)
               : (in_a & in_b);
  assign next_acc = acc + mixed;
  assign out_sum = acc;
  assign out_flag = flag;

  always @(posedge clk) begin
    stage <= mixed;
    if (start) acc <= next_acc;
    flag <= ^stage;
  end
endmodule
"""


def train_and_save() -> RTLTimer:
    print("Building training dataset (8 generated benchmark designs)...")
    train_records = build_dataset(BENCHMARK_SPECS[:8])

    print("Training RTL-Timer (4 BOG representations, max-arrival loss, ensemble)...")
    config = RTLTimerConfig(
        bitwise=BitwiseConfig(n_estimators=40, max_depth=5, max_train_endpoints_per_design=120),
        signalwise=SignalwiseConfig(n_estimators=40, ranker_estimators=60),
        overall=OverallConfig(n_estimators=30),
    )
    timer = RTLTimer(config).fit(train_records)

    bundle_id = timer.save(BUNDLE_PATH)
    print(f"Saved the fitted model to {BUNDLE_PATH} (bundle {bundle_id[:12]}).")
    return timer


def main() -> None:
    if BUNDLE_PATH.exists():
        # Reloaded models predict bit-identically to the fitted original —
        # the whole point of the save/load boundary is never training twice.
        print(f"Loading the fitted model from {BUNDLE_PATH} (no re-training)...")
        timer = RTLTimer.load(BUNDLE_PATH)
    else:
        timer = train_and_save()

    print("Evaluating the user design (no synthesis of the user RTL is needed)...")
    record = build_design_record(USER_VERILOG, name="accumulator")
    prediction = timer.predict(record)

    print(f"\nPredicted overall timing for '{prediction.design}':")
    print(f"  WNS = {prediction.overall['wns']:.1f} ps   TNS = {prediction.overall['tns']:.1f} ps")

    print("\nPer-signal predicted slack (most critical first):")
    for signal in prediction.ranked_signals():
        slack = prediction.signal_slack[signal]
        group = prediction.rank_group[signal]
        print(f"  {signal:10s}  slack {slack:8.1f} ps   rank group g{group}")

    # For reference only: compare with the ground-truth labels the dataset
    # generation produced by actually synthesizing the design.
    print("\nGround-truth signal slack (from the synthesis label flow):")
    for signal, slack in sorted(record.signal_slack_labels().items(), key=lambda kv: kv[1]):
        print(f"  {signal:10s}  slack {slack:8.1f} ps")


if __name__ == "__main__":
    main()
