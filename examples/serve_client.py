"""Serve a model over HTTP and query it like a client would.

End-to-end demonstration of the serving stack in one process:

1. train a small RTL-Timer (or reuse one already in the registry),
2. register it in the model registry (content-addressed + versioned),
3. load it back and bind the JSON-over-HTTP server on a free port,
4. act as a client: ``POST /predict`` and ``POST /whatif`` for a user
   Verilog module, then read ``/health`` and ``/metrics``.

Run with:  PYTHONPATH=src python examples/serve_client.py
"""

import json
import urllib.request

from repro.core import (
    BitwiseConfig,
    OverallConfig,
    RTLTimer,
    RTLTimerConfig,
    SignalwiseConfig,
    build_dataset,
)
from repro.hdl.generate import BENCHMARK_SPECS
from repro.serve import ModelRegistry, RegistryError, ServeConfig, TimingService, start_server

MODEL_NAME = "serve-client-demo"

USER_VERILOG = """
module mixer (clk, sel, in_a, in_b, out_q);
  input clk;
  input sel;
  input [11:0] in_a;
  input [11:0] in_b;
  output [11:0] out_q;

  reg [11:0] acc;
  reg [11:0] hold;
  wire [11:0] blended;

  assign blended = sel ? (in_a + hold) : (in_a ^ in_b);
  assign out_q = acc;

  always @(posedge clk) begin
    hold <= in_b;
    acc <= blended + (acc >> 1);
  end
endmodule
"""


def get_model(registry: ModelRegistry) -> RTLTimer:
    """Load the demo model, training + registering it only on first use."""
    try:
        timer = registry.load(MODEL_NAME)
        print(f"loaded model {MODEL_NAME!r} from the registry (no re-training)")
        return timer
    except RegistryError:
        pass
    print("training the demo model (first run only)...")
    records = build_dataset(BENCHMARK_SPECS[:6])
    config = RTLTimerConfig(
        bitwise=BitwiseConfig(n_estimators=30, max_depth=5, max_train_endpoints_per_design=100),
        signalwise=SignalwiseConfig(n_estimators=30, ranker_estimators=40),
        overall=OverallConfig(n_estimators=20),
    )
    timer = RTLTimer(config).fit(records)
    manifest = registry.save(timer, MODEL_NAME)
    print(f"registered bundle {manifest['bundle_id'][:12]} as {MODEL_NAME!r}")
    return timer


def post(base: str, path: str, payload: dict) -> dict:
    request = urllib.request.Request(
        f"{base}{path}",
        data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request) as response:
        return json.loads(response.read())


def get(base: str, path: str) -> dict:
    with urllib.request.urlopen(f"{base}{path}") as response:
        return json.loads(response.read())


def main() -> None:
    registry = ModelRegistry()
    timer = get_model(registry)

    service = TimingService(
        timer,
        ServeConfig(max_batch=8, batch_window_s=0.005),
        manifest=registry.manifest(MODEL_NAME),
    )
    server = start_server(service, port=0)  # OS-assigned free port
    host, port = server.server_address
    base = f"http://{host}:{port}"
    print(f"serving on {base}\n")

    try:
        health = get(base, "/health")
        print(f"/health: status={health['status']} model={health['model'].get('name')}")

        prediction = post(base, "/predict", {"source": USER_VERILOG, "name": "mixer"})
        print(f"\n/predict for '{prediction['design']}':")
        print(f"  WNS = {prediction['overall']['wns']:.1f} ps"
              f"   TNS = {prediction['overall']['tns']:.1f} ps")
        for signal in prediction["ranked_signals"]:
            slack = prediction["signal_slack"][signal]
            group = prediction["rank_group"][signal]
            print(f"  {signal:8s} slack {slack:8.1f} ps   rank group g{group}")
        print(f"  served in {prediction['serve']['latency_seconds'] * 1000:.1f} ms "
              f"(batch of {prediction['serve']['batch_size']})")

        whatif = post(base, "/whatif", {"source": USER_VERILOG, "name": "mixer", "k": 4})
        print("\n/whatif candidates (incremental projections, no re-synthesis):")
        for candidate in whatif["candidates"]:
            print(f"  #{candidate['index']}: wns {candidate['wns']:8.1f}"
                  f"  tns {candidate['tns']:9.1f}  patches {candidate['n_patches']}")

        metrics = get(base, "/metrics")["serving"]
        print(f"\n/metrics: {metrics['requests']} request(s) in {metrics['batches']} "
              f"model pass(es), p50 {metrics.get('predict_p50', 0.0) * 1000:.1f} ms")
    finally:
        server.shutdown()
        service.close()


if __name__ == "__main__":
    main()
