"""Slack annotation example: write predicted slack directly on the Verilog.

Mirrors the paper's first application (Section 3.5.1): an RTL designer points
RTL-Timer at a design and gets back the same file with a header carrying the
technology and predicted WNS/TNS, and a trailing comment on every sequential
signal declaration with its predicted slack and criticality rank group.

Run with:  python examples/annotate_design.py
The annotated file is written to examples/output/b17_annotated.v.
"""

from pathlib import Path

from repro.core import (
    BitwiseConfig,
    OverallConfig,
    RTLTimer,
    RTLTimerConfig,
    SignalwiseConfig,
    build_dataset,
)
from repro.hdl.generate import BENCHMARK_SPECS

TARGET_DESIGN = "b17"
OUTPUT_DIR = Path(__file__).parent / "output"


def main() -> None:
    specs = list(BENCHMARK_SPECS)
    target_spec = next(s for s in specs if s.name == TARGET_DESIGN)
    train_specs = [s for s in specs if s.name != TARGET_DESIGN][:10]

    print(f"Building dataset: {len(train_specs)} training designs + target '{TARGET_DESIGN}'")
    train_records = build_dataset(train_specs)
    target_record = build_dataset([target_spec])[0]

    print("Training RTL-Timer...")
    config = RTLTimerConfig(
        bitwise=BitwiseConfig(n_estimators=40, max_depth=5, max_train_endpoints_per_design=120),
        signalwise=SignalwiseConfig(n_estimators=40, ranker_estimators=60),
        overall=OverallConfig(n_estimators=30),
    )
    timer = RTLTimer(config).fit(train_records)

    print("Annotating the target design...")
    prediction = timer.predict(target_record)
    annotated = timer.annotate(target_record, prediction)

    OUTPUT_DIR.mkdir(exist_ok=True)
    output_path = OUTPUT_DIR / f"{TARGET_DESIGN}_annotated.v"
    output_path.write_text(annotated)
    print(f"Annotated Verilog written to {output_path}\n")

    print("First 30 lines of the annotated file:")
    for line in annotated.splitlines()[:30]:
        print("  " + line)

    bitwise_metrics = timer.evaluate_bitwise(target_record)
    print("\nPrediction quality on this design (vs. the synthesis labels):")
    print(
        f"  bit-wise R = {bitwise_metrics['r']:.2f}   "
        f"MAPE = {bitwise_metrics['mape']:.0f}%   COVR = {bitwise_metrics['covr']:.0f}%"
    )


if __name__ == "__main__":
    main()
