"""Prediction-driven synthesis optimization (group_path + retime).

Mirrors the paper's second application (Section 3.5.2 and Table 6): the
predicted signal criticality ranking of an unseen design drives the
``group_path`` and ``retime`` options of the synthesis flow.  The script then
runs placement on both netlists to show that the timing gains persist through
the physical stage (Section 4.4).

Run with:  python examples/optimize_synthesis.py
"""

from repro.core import (
    BitwiseConfig,
    OverallConfig,
    RTLTimer,
    RTLTimerConfig,
    SignalwiseConfig,
    build_dataset,
    run_optimization_experiment,
    run_optimization_sweep,
)
from repro.hdl.generate import BENCHMARK_SPECS
from repro.physical import place_and_optimize

TARGET_DESIGN = "b18_1"


def main() -> None:
    specs = list(BENCHMARK_SPECS)
    target_spec = next(s for s in specs if s.name == TARGET_DESIGN)
    train_specs = [s for s in specs if s.name != TARGET_DESIGN][:10]

    print(f"Building dataset and training RTL-Timer (target: {TARGET_DESIGN})...")
    train_records = build_dataset(train_specs)
    record = build_dataset([target_spec])[0]
    config = RTLTimerConfig(
        bitwise=BitwiseConfig(n_estimators=40, max_depth=5, max_train_endpoints_per_design=120),
        signalwise=SignalwiseConfig(n_estimators=40, ranker_estimators=60),
        overall=OverallConfig(n_estimators=30),
    )
    timer = RTLTimer(config).fit(train_records)

    print("Predicting signal criticality ranking and building synthesis options...")
    prediction = timer.predict(record)
    ranked = prediction.ranked_signals()
    print(f"  top-5 predicted critical signals: {ranked[:5]}")

    print("Running default vs prediction-driven synthesis...")
    outcome = run_optimization_experiment(record, ranked, ranking_source="predicted")

    def describe(result, label):
        qor = result.qor
        print(
            f"  {label:12s} WNS {qor.wns:8.1f}  TNS {qor.tns:9.1f}  "
            f"power {qor.total_power:7.1f}  area {qor.area:8.1f}"
        )

    describe(outcome.default, "default")
    describe(outcome.optimized, "optimized")
    print(
        f"  change: WNS {outcome.wns_change_pct:+.1f}%  TNS {outcome.tns_change_pct:+.1f}%  "
        f"power {outcome.power_change_pct:+.1f}%  area {outcome.area_change_pct:+.1f}%"
    )

    print("\nRunning a 16-candidate what-if sweep (incremental engine, no re-synthesis)...")
    estimates = timer.what_if(record, prediction=prediction, k=16)
    for index, estimate in enumerate(estimates[:4]):
        print(
            f"  candidate {index:2d}: projected WNS {estimate.wns:8.1f}  "
            f"TNS {estimate.tns:9.1f}  ({estimate.n_patches} patches)"
        )
    sweep = run_optimization_sweep(record, ranked, k=16, ranking_source="predicted")
    print(
        f"  sweep chose candidate {sweep.chosen_index} -> "
        f"WNS {sweep.wns_change_pct:+.1f}%  TNS {sweep.tns_change_pct:+.1f}%"
    )

    print("\nRunning placement + post-placement optimization on both netlists...")
    default_place = place_and_optimize(outcome.default.netlist, record.clock, seed=3)
    optimized_place = place_and_optimize(outcome.optimized.netlist, record.clock, seed=3)
    print(
        "  after placement + post-opt:  default TNS "
        f"{default_place.post_optimization.tns:9.1f}   optimized TNS "
        f"{optimized_place.post_optimization.tns:9.1f}"
    )
    if abs(optimized_place.post_optimization.tns) <= abs(default_place.post_optimization.tns):
        print("  => the synthesis-stage gain persists after placement.")
    else:
        print("  => this seed is a non-optimized case (the paper reports those too).")


if __name__ == "__main__":
    main()
